package geom

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randMatrix fills a rows×cols matrix with standard normal values from a
// fixed-seed source, optionally pulling rows toward a few cluster centers so
// nearest-center structure resembles real workloads.
func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// naiveNearest is the reference path the blocked engine must match.
func naiveNearest(pts, centers *Matrix) ([]int32, []float64) {
	idx := make([]int32, pts.Rows)
	d2 := make([]float64, pts.Rows)
	for i := 0; i < pts.Rows; i++ {
		c, d := Nearest(pts.Row(i), centers)
		idx[i] = int32(c)
		d2[i] = d
	}
	return idx, d2
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// closeD2 compares a blocked squared distance against the naive one. The
// expansion ‖x‖²+‖c‖²−2⟨x,c⟩ carries absolute error proportional to the
// norms (catastrophic cancellation when x ≈ c), so tiny distances are
// compared on an absolute scale set by the operand magnitudes while everything
// else must agree to 1e-9 relative.
func closeD2(got, want, normScale float64) bool {
	if relDiff(got, want) <= 1e-9 {
		return true
	}
	return math.Abs(got-want) <= 1e-9*math.Max(1, normScale)
}

// TestNearestBlockedEquivalence asserts the blocked kernels return the same
// assignments as the naive SqDistBound scan across the paper's
// dimensionalities, with squared distances within 1e-9 relative.
func TestNearestBlockedEquivalence(t *testing.T) {
	for _, dim := range []int{1, 3, 15, 58, 128} {
		for _, k := range []int{1, 2, 7, 16, 33, 100} {
			t.Run(fmt.Sprintf("d=%d_k=%d", dim, k), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(dim*1000 + k)))
				pts := randMatrix(r, 517, dim) // not a multiple of tilePoints
				centers := randMatrix(r, k, dim)
				wantIdx, wantD2 := naiveNearest(pts, centers)

				cNorms := RowSqNorms(centers, nil)
				gotIdx := make([]int32, pts.Rows)
				gotD2 := make([]float64, pts.Rows)
				sc := GetScratch()
				defer sc.Release()
				NearestBlocked(pts, centers, cNorms, gotIdx, gotD2, sc)

				for i := range wantIdx {
					if gotIdx[i] != wantIdx[i] {
						t.Fatalf("point %d: blocked nearest %d, naive %d (d2 %v vs %v)",
							i, gotIdx[i], wantIdx[i], gotD2[i], wantD2[i])
					}
					scale := SqNorm(pts.Row(i)) + cNorms[gotIdx[i]]
					if !closeD2(gotD2[i], wantD2[i], scale) {
						t.Fatalf("point %d: blocked d²=%v naive d²=%v", i, gotD2[i], wantD2[i])
					}
				}
			})
		}
	}
}

// TestNearestBlockedRows checks the gather variant used by PredictBatch.
func TestNearestBlockedRows(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n, dim, k = 300, 58, 32
	pts := randMatrix(r, n, dim)
	centers := randMatrix(r, k, dim)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = pts.Row(i)
	}
	wantIdx, _ := naiveNearest(pts, centers)

	out := make([]int, n)
	sc := GetScratch()
	defer sc.Release()
	NearestBlockedRows(rows, centers, RowSqNorms(centers, nil), out, sc)
	for i := range out {
		if out[i] != int(wantIdx[i]) {
			t.Fatalf("point %d: rows variant nearest %d, naive %d", i, out[i], wantIdx[i])
		}
	}
}

// TestPairwiseSqDist checks the full-block kernel against SqDist pair by
// pair.
func TestPairwiseSqDist(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, dim := range []int{1, 5, 58} {
		pts := randMatrix(r, 37, dim)
		centers := randMatrix(r, 13, dim)
		out := make([]float64, pts.Rows*centers.Rows)
		PairwiseSqDist(pts, centers, nil, nil, out)
		for i := 0; i < pts.Rows; i++ {
			for j := 0; j < centers.Rows; j++ {
				want := SqDist(pts.Row(i), centers.Row(j))
				scale := SqNorm(pts.Row(i)) + SqNorm(centers.Row(j))
				if !closeD2(out[i*centers.Rows+j], want, scale) {
					t.Fatalf("d=%d pair (%d,%d): pairwise %v, SqDist %v", dim, i, j, out[i*centers.Rows+j], want)
				}
			}
		}
	}
}

// TestSqDistNorm checks the cached-norm single-pair kernel.
func TestSqDistNorm(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, dim := range []int{1, 3, 17, 58} {
		for trial := 0; trial < 50; trial++ {
			a := make([]float64, dim)
			b := make([]float64, dim)
			for i := range a {
				a[i] = r.NormFloat64()
				b[i] = r.NormFloat64()
			}
			got := SqDistNorm(a, b, SqNorm(a), SqNorm(b))
			if !closeD2(got, SqDist(a, b), SqNorm(a)+SqNorm(b)) {
				t.Fatalf("d=%d: SqDistNorm %v, SqDist %v", dim, got, SqDist(a, b))
			}
		}
	}
	// Cancellation: identical vectors must clamp to exactly 0.
	v := []float64{1.25e8, -3.5e7, 9.125e6}
	if got := SqDistNorm(v, v, SqNorm(v), SqNorm(v)); got != 0 {
		t.Fatalf("SqDistNorm(v, v) = %v, want 0", got)
	}
}

// TestNearestBlockedRagged fuzzes tile-boundary shapes: n and k straddling
// multiples of the tile sizes and of the 2×4 micro-kernel, so every tail
// path (odd point, <4 center group, partial tiles) is exercised.
func TestNearestBlockedRagged(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	sc := GetScratch()
	defer sc.Release()
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(2*tilePoints+3)
		k := 1 + r.Intn(2*tileCenters+3)
		dim := 1 + r.Intn(40)
		pts := randMatrix(r, n, dim)
		centers := randMatrix(r, k, dim)
		wantIdx, wantD2 := naiveNearest(pts, centers)
		gotIdx := make([]int32, n)
		gotD2 := make([]float64, n)
		NearestBlocked(pts, centers, RowSqNorms(centers, nil), gotIdx, gotD2, sc)
		for i := 0; i < n; i++ {
			scale := SqNorm(pts.Row(i)) + SqNorm(centers.Row(int(gotIdx[i])))
			if gotIdx[i] != wantIdx[i] || !closeD2(gotD2[i], wantD2[i], scale) {
				t.Fatalf("trial %d (n=%d k=%d d=%d) point %d: blocked (%d, %v) naive (%d, %v)",
					trial, n, k, dim, i, gotIdx[i], gotD2[i], wantIdx[i], wantD2[i])
			}
		}
	}
}

// TestNearestBlockedDuplicateCenters pins the tie rule: equal distances
// resolve to the lowest center index, matching the naive scan.
func TestNearestBlockedDuplicateCenters(t *testing.T) {
	pts := FromRows([][]float64{{1, 2, 3, 4, 5}, {0, 0, 0, 0, 0}})
	row := []float64{1, 1, 1, 1, 1}
	centers := FromRows([][]float64{row, row, row, row, row, row, row, row, row})
	idx := make([]int32, pts.Rows)
	d2 := make([]float64, pts.Rows)
	sc := GetScratch()
	defer sc.Release()
	NearestBlocked(pts, centers, RowSqNorms(centers, nil), idx, d2, sc)
	for i, got := range idx {
		if got != 0 {
			t.Fatalf("point %d: tie resolved to center %d, want 0", i, got)
		}
	}
}

func TestMatrixReserve(t *testing.T) {
	m := NewMatrix(0, 3)
	m.Reserve(100)
	if cap(m.Data) < 300 {
		t.Fatalf("Reserve(100): cap %d, want ≥ 300", cap(m.Data))
	}
	ptr := &m.Data[:1][0]
	for i := 0; i < 100; i++ {
		m.AppendRow([]float64{float64(i), 0, 0})
	}
	if &m.Data[0] != ptr {
		t.Fatal("AppendRow reallocated despite Reserve")
	}
	if m.Rows != 100 || m.Row(99)[0] != 99 {
		t.Fatalf("unexpected contents after Reserve+AppendRow: rows=%d", m.Rows)
	}
	// Reserve on an empty matrix with unknown Cols is a no-op.
	var z Matrix
	z.Reserve(10)
	if z.Data != nil {
		t.Fatal("Reserve allocated with Cols == 0")
	}
}

func TestUseBlockedOverride(t *testing.T) {
	defer SetKernel(KernelAuto)
	SetKernel(KernelNaive)
	if UseBlocked(1000, 1000) {
		t.Fatal("KernelNaive override ignored")
	}
	SetKernel(KernelBlocked)
	if !UseBlocked(1, 1) {
		t.Fatal("KernelBlocked override ignored")
	}
	SetKernel(KernelAuto)
	if UseBlocked(2, 3) {
		t.Fatal("tiny workload should stay on the naive scan")
	}
	if !UseBlocked(32, 58) {
		t.Fatal("k=32 d=58 should use the blocked engine")
	}
}

// BenchmarkNearestCrossover measures naive vs blocked across (k, d) to
// justify the UseBlocked constants. Run with:
//
//	go test ./internal/geom -bench=NearestCrossover -benchtime=100x
func BenchmarkNearestCrossover(b *testing.B) {
	for _, dim := range []int{3, 15, 58, 128} {
		for _, k := range []int{4, 8, 16, 32, 64, 128} {
			r := rand.New(rand.NewSource(int64(dim + k)))
			pts := randMatrix(r, 2048, dim)
			centers := randMatrix(r, k, dim)
			b.Run(fmt.Sprintf("naive/d=%d/k=%d", dim, k), func(b *testing.B) {
				b.SetBytes(int64(2048 * dim * 8))
				for i := 0; i < b.N; i++ {
					for p := 0; p < pts.Rows; p++ {
						Nearest(pts.Row(p), centers)
					}
				}
			})
			b.Run(fmt.Sprintf("blocked/d=%d/k=%d", dim, k), func(b *testing.B) {
				cNorms := RowSqNorms(centers, nil)
				idx := make([]int32, pts.Rows)
				d2 := make([]float64, pts.Rows)
				sc := GetScratch()
				defer sc.Release()
				b.SetBytes(int64(2048 * dim * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					NearestBlocked(pts, centers, cNorms, idx, d2, sc)
				}
			})
		}
	}
}

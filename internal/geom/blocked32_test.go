package geom

import (
	"fmt"
	"math"
	"testing"
)

// randMatrix32Pair builds a random float64 matrix and its float32 narrowing.
func randMatrix32Pair(rows, cols int, seed uint64) (*Matrix, *Matrix32) {
	m := NewMatrix(rows, cols)
	s := seed
	for i := range m.Data {
		s = s*6364136223846793005 + 1442695040888963407
		// Uniform in [-2, 2): unit-scale data, the regime the tolerance
		// contract targets.
		m.Data[i] = 4*float64(s>>11)/(1<<53) - 2
	}
	return m, ToMatrix32(m)
}

// TestNearestBlocked32MatchesF64 checks the core of the float32 tolerance
// contract on the kernel itself: assignments agree with the exact float64
// scan except where two centers are within float32 noise of a tie, and the
// reported distance is always within relative tolerance of the true one.
func TestNearestBlocked32MatchesF64(t *testing.T) {
	for _, asm := range asmVariants(t) {
		t.Run(fmt.Sprintf("asm=%v", asm), func(t *testing.T) {
			SetF32Asm(asm)
			defer SetF32Asm(F32AsmAvailable())
			for _, dim := range []int{1, 2, 3, 5, 8, 16, 31, 32, 33, 64, 128} {
				for _, k := range []int{1, 2, 4, 5, 16, 17, 33} {
					n := 257 // odd: exercises the tail-point path in every tile
					pts64, pts32 := randMatrix32Pair(n, dim, uint64(dim*1000+k))
					ctr64, ctr32 := randMatrix32Pair(k, dim, uint64(dim*7777+k))
					cNorms := RowSqNorms32(ctr32, nil)
					sc := GetScratch32()
					idx := make([]int32, n)
					d2 := make([]float32, n)
					NearestBlocked32(pts32, ctr32, cNorms, idx, d2, sc)
					sc.Release()
					for i := 0; i < n; i++ {
						wantIdx, wantD2 := Nearest(pts64.Row(i), ctr64)
						scale := SqNorm(pts64.Row(i)) + SqNorm(ctr64.Row(wantIdx)) + 1
						if gotD2 := float64(d2[i]); math.Abs(gotD2-wantD2) > 1e-5*scale {
							t.Fatalf("dim=%d k=%d point %d: d2 %v, want %v (scale %v)", dim, k, i, gotD2, wantD2, scale)
						}
						if int(idx[i]) != wantIdx {
							// Disagreement is allowed only on a near-tie.
							alt := SqDist(pts64.Row(i), ctr64.Row(int(idx[i])))
							if math.Abs(alt-wantD2) > 1e-4*scale {
								t.Fatalf("dim=%d k=%d point %d: picked center %d (d2=%v) over %d (d2=%v), not a near-tie",
									dim, k, i, idx[i], alt, wantIdx, wantD2)
							}
						}
					}
				}
			}
		})
	}
}

// asmVariants returns the kernel variants testable in this binary.
func asmVariants(t *testing.T) []bool {
	t.Helper()
	if F32AsmAvailable() {
		return []bool{false, true}
	}
	return []bool{false}
}

// TestDotF32AsmMatchesGo pins the assembly kernels against the pure-Go ones
// directly, across lengths that hit the 4-wide body and every tail size.
func TestDotF32AsmMatchesGo(t *testing.T) {
	if !F32AsmAvailable() {
		t.Skip("no assembly kernels in this build")
	}
	for _, d := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 58, 63, 64, 127, 128} {
		_, a := randMatrix32Pair(1, d+1, uint64(d)+1)
		_, b := randMatrix32Pair(1, d+1, uint64(d)+2)
		_, cs := randMatrix32Pair(4, d+1, uint64(d)+3)
		av, bv := a.Data[:d], b.Data[:d]
		c0, c1, c2, c3 := cs.Row(0)[:d], cs.Row(1)[:d], cs.Row(2)[:d], cs.Row(3)[:d]
		g := [8]float32{}
		g[0], g[1], g[2], g[3], g[4], g[5], g[6], g[7] = dot2x4f32(av, bv, c0, c1, c2, c3)
		s := [8]float32{}
		s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7] = dot2x4f32asm(av, bv, c0, c1, c2, c3)
		for j := range g {
			if math.Abs(float64(g[j]-s[j])) > 1e-4*(math.Abs(float64(g[j]))+1) {
				t.Fatalf("d=%d: dot2x4 lane %d: go %v, asm %v", d, j, g[j], s[j])
			}
		}
		g1 := [4]float32{}
		g1[0], g1[1], g1[2], g1[3] = dot1x4f32(av, c0, c1, c2, c3)
		s1 := [4]float32{}
		s1[0], s1[1], s1[2], s1[3] = dot1x4f32asm(av, c0, c1, c2, c3)
		for j := range g1 {
			if math.Abs(float64(g1[j]-s1[j])) > 1e-4*(math.Abs(float64(g1[j]))+1) {
				t.Fatalf("d=%d: dot1x4 lane %d: go %v, asm %v", d, j, g1[j], s1[j])
			}
		}
	}
}

// TestPairwiseSqDist32 checks the full-block kernel against the per-pair
// float32 reference arithmetic.
func TestPairwiseSqDist32(t *testing.T) {
	for _, asm := range asmVariants(t) {
		SetF32Asm(asm)
		for _, dim := range []int{1, 4, 17, 58} {
			n, k := 37, 9
			_, pts := randMatrix32Pair(n, dim, uint64(dim)*31)
			_, ctr := randMatrix32Pair(k, dim, uint64(dim)*131)
			out := make([]float32, n*k)
			PairwiseSqDist32(pts, ctr, nil, nil, out)
			for i := 0; i < n; i++ {
				for j := 0; j < k; j++ {
					want := SqDist32(pts.Row(i), ctr.Row(j))
					scale := float64(SqNorm32(pts.Row(i))+SqNorm32(ctr.Row(j))) + 1
					if got := float64(out[i*k+j]); math.Abs(got-want) > 1e-5*scale {
						t.Fatalf("asm=%v dim=%d (%d,%d): got %v, want %v", asm, dim, i, j, got, want)
					}
				}
			}
		}
	}
	SetF32Asm(F32AsmAvailable())
}

// TestNearestBlockedRows32 exercises the gather-and-convert serving entry.
func TestNearestBlockedRows32(t *testing.T) {
	n, dim, k := 300, 23, 11
	pts64, _ := randMatrix32Pair(n, dim, 5)
	ctr64, ctr32 := randMatrix32Pair(k, dim, 6)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = pts64.Row(i)
	}
	cNorms := RowSqNorms32(ctr32, nil)
	out := make([]int, n)
	sc := GetScratch32()
	NearestBlockedRows32(rows, ctr32, cNorms, out, sc)
	sc.Release()
	for i, got := range out {
		want, wantD2 := Nearest(rows[i], ctr64)
		if got != want {
			alt := SqDist(rows[i], ctr64.Row(got))
			scale := SqNorm(rows[i]) + 1
			if math.Abs(alt-wantD2) > 1e-4*scale {
				t.Fatalf("point %d: got center %d (d2=%v), want %d (d2=%v)", i, got, alt, want, wantD2)
			}
		}
	}
}

// TestSetF32Asm checks the runtime seam: disabling always works, enabling
// only when the kernels are compiled in.
func TestSetF32Asm(t *testing.T) {
	defer SetF32Asm(F32AsmAvailable())
	if !SetF32Asm(false) || F32AsmEnabled() {
		t.Fatal("disabling the asm kernels must always succeed")
	}
	if got := SetF32Asm(true); got != F32AsmAvailable() {
		t.Fatalf("SetF32Asm(true) = %v with availability %v", got, F32AsmAvailable())
	}
}

func benchNearest32(b *testing.B, asm bool) {
	if asm && !F32AsmAvailable() {
		b.Skip("no assembly kernels in this build")
	}
	SetF32Asm(asm)
	defer SetF32Asm(F32AsmAvailable())
	n, dim, k := 512, 32, 32
	_, pts := randMatrix32Pair(n, dim, 1)
	_, ctr := randMatrix32Pair(k, dim, 2)
	cNorms := RowSqNorms32(ctr, nil)
	idx := make([]int32, n)
	d2 := make([]float32, n)
	sc := GetScratch32()
	defer sc.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NearestBlocked32(pts, ctr, cNorms, idx, d2, sc)
	}
}

func BenchmarkNearestBlocked32Go(b *testing.B)  { benchNearest32(b, false) }
func BenchmarkNearestBlocked32Asm(b *testing.B) { benchNearest32(b, true) }

func BenchmarkNearestBlocked64(b *testing.B) {
	n, dim, k := 512, 32, 32
	pts, _ := randMatrix32Pair(n, dim, 1)
	ctr, _ := randMatrix32Pair(k, dim, 2)
	cNorms := RowSqNorms(ctr, nil)
	idx := make([]int32, n)
	d2 := make([]float64, n)
	sc := GetScratch()
	defer sc.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NearestBlocked(pts, ctr, cNorms, idx, d2, sc)
	}
}

//go:build arm64 && !km_purego

package geom

// hasDotF32Asm reports that this build carries the NEON float32 dot kernels
// in dotf32_arm64.s. Build with -tags km_purego to exclude them and fall
// back to the pure-Go kernels everywhere.
const hasDotF32Asm = true

// baselineF32Tier is the SIMD tier the architecture guarantees without
// feature detection: NEON (ASIMD) on arm64.
const baselineF32Tier = F32TierNEON

// dot2x4f32asm computes the 8 float32 inner products of points {a, b}
// against centers {c0..c3} with 4-wide NEON fused multiply-adds.
// Accumulation order is lane-strided with the scalar tail added after the
// lane reduce, so the value may differ from dot2x4f32 by float32 rounding —
// covered by the tolerance contract, and still a pure function of the
// dimension.
//
//go:noescape
func dot2x4f32asm(a, b, c0, c1, c2, c3 []float32) (a0, a1, a2, a3, b0, b1, b2, b3 float32)

// dot1x4f32asm is dot2x4f32asm for a single point.
//
//go:noescape
func dot1x4f32asm(a, c0, c1, c2, c3 []float32) (a0, a1, a2, a3 float32)

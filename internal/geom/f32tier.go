package geom

import "sync/atomic"

// This file holds the float32 kernel tier ladder: runtime selection between
// the pure-Go dot kernels, the baseline SIMD kernels the architecture
// guarantees (SSE2 on amd64, NEON on arm64), and the AVX2+FMA kernels gated
// on CPUID feature detection (cpu_amd64.go). The active tier is process-wide
// and atomically swappable so tests and benchmarks can force any available
// tier; the km_purego build tag removes every assembly tier at compile time.
//
// Summation-order guarantee: within one tier, each (point, center) inner
// product is accumulated in a fixed order that depends only on the dimension
// and the center's position in the tile ladder — never on worker count or
// tiling position — so results are bit-identical across parallelism for a
// fixed tier. Different tiers use different accumulation orders (sequential,
// 4-lane strided, 8-lane strided with FMA) and agree only under the
// tolerance contract in docs/kernels.md.

// F32Tier identifies one rung of the float32 dot-kernel ladder.
type F32Tier int32

const (
	// F32TierPureGo is the portable Go implementation — always available,
	// and the only tier in km_purego builds.
	F32TierPureGo F32Tier = iota
	// F32TierSSE2 is the 4-wide SSE2 kernel set (amd64 baseline; no feature
	// detection needed).
	F32TierSSE2
	// F32TierNEON is the 4-wide NEON kernel set (arm64 baseline; ASIMD is
	// architectural on ARMv8).
	F32TierNEON
	// F32TierAVX2 is the 8-wide AVX2+FMA kernel set, used only when CPUID
	// reports AVX2, FMA, and OS-enabled YMM state.
	F32TierAVX2
)

// String returns the tier's CLI/doc spelling ("purego", "sse2", "neon",
// "avx2").
func (t F32Tier) String() string {
	switch t {
	case F32TierPureGo:
		return "purego"
	case F32TierSSE2:
		return "sse2"
	case F32TierNEON:
		return "neon"
	case F32TierAVX2:
		return "avx2"
	default:
		return "unknown"
	}
}

// f32Tier holds the active tier. It is initialised to the best tier the
// binary and CPU support and can be pinned by SetF32Tier/SetF32Asm.
var f32Tier atomic.Int32

func init() { f32Tier.Store(int32(bestF32Tier())) }

// bestF32Tier returns the fastest tier available in this binary on this CPU.
func bestF32Tier() F32Tier {
	if hasAVX2F32 {
		return F32TierAVX2
	}
	if hasDotF32Asm {
		return baselineF32Tier
	}
	return F32TierPureGo
}

// f32TierAvailable reports whether tier t can execute in this binary on this
// CPU.
func f32TierAvailable(t F32Tier) bool {
	switch t {
	case F32TierPureGo:
		return true
	case F32TierAVX2:
		return bool(hasAVX2F32)
	default:
		return hasDotF32Asm && t == baselineF32Tier
	}
}

// activeF32Tier is the dispatch-site load of the current tier.
func activeF32Tier() F32Tier { return F32Tier(f32Tier.Load()) }

// ActiveF32Tier returns the float32 kernel tier currently in use.
func ActiveF32Tier() F32Tier { return activeF32Tier() }

// SetF32Tier forces a specific float32 kernel tier and reports whether the
// request took effect (false when the binary or CPU lacks the tier). It is
// the test/bench knob behind the runtime dispatch; production code should
// leave the automatically selected tier alone.
func SetF32Tier(t F32Tier) bool {
	if !f32TierAvailable(t) {
		return false
	}
	f32Tier.Store(int32(t))
	return true
}

// F32Tiers returns every tier available in this binary on this CPU in
// ascending preference order, starting with F32TierPureGo.
func F32Tiers() []F32Tier {
	tiers := []F32Tier{F32TierPureGo}
	if hasDotF32Asm {
		tiers = append(tiers, baselineF32Tier)
	}
	if hasAVX2F32 {
		tiers = append(tiers, F32TierAVX2)
	}
	return tiers
}

// SetF32Asm enables or disables the assembly float32 dot kernels and reports
// whether the request took effect (enabling fails when the binary carries no
// assembly — unsupported architectures or the km_purego tag). Enabling
// selects the best available tier; disabling pins F32TierPureGo. Kept as the
// coarse on/off seam from before the tier ladder existed; SetF32Tier is the
// precise knob.
func SetF32Asm(on bool) bool {
	if !on {
		f32Tier.Store(int32(F32TierPureGo))
		return true
	}
	if !hasDotF32Asm {
		return false
	}
	f32Tier.Store(int32(bestF32Tier()))
	return true
}

// F32AsmEnabled reports whether any assembly float32 tier is active.
func F32AsmEnabled() bool { return activeF32Tier() != F32TierPureGo }

// F32AsmAvailable reports whether this binary contains assembly float32 dot
// kernels at all.
func F32AsmAvailable() bool { return hasDotF32Asm }

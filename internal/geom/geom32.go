package geom

import (
	"fmt"
	"math"
)

// This file holds the float32 storage types of the single-precision path:
// Matrix32 and Dataset32 mirror Matrix and Dataset with a float32 payload,
// halving the memory bandwidth of every scan that streams them. Weights stay
// float64 — they are O(n) rather than O(n·d) bytes, and D² sampling sums
// them across the whole dataset, where float32 accumulation would actually
// lose mass. The float32 distance kernels live in blocked32.go; the
// precision contract they obey (and that callers may rely on) is documented
// in docs/kernels.md.

// Matrix32 is a dense row-major float32 matrix: row i occupies
// Data[i*Cols : (i+1)*Cols]. It is the storage type of the float32 compute
// path; an mmap'd float32 .kmd file aliases straight into one.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 allocates a zeroed rows×cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic("geom: negative matrix dimension")
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// RowRange returns a value view of rows [lo, hi) sharing the backing
// storage, mirroring Matrix.RowRange.
func (m *Matrix32) RowRange(lo, hi int) Matrix32 {
	return Matrix32{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// Reserve grows the backing storage to hold at least rows rows without
// changing the matrix contents, mirroring Matrix.Reserve.
func (m *Matrix32) Reserve(rows int) {
	if m.Cols <= 0 || rows <= 0 {
		return
	}
	need := rows * m.Cols
	if cap(m.Data) >= need {
		return
	}
	buf := make([]float32, len(m.Data), need)
	copy(buf, m.Data)
	m.Data = buf
}

// AppendRow appends one row, mirroring Matrix.AppendRow.
func (m *Matrix32) AppendRow(p []float32) {
	if m.Rows == 0 && m.Cols == 0 {
		m.Cols = len(p)
	}
	if len(p) != m.Cols {
		panic(fmt.Sprintf("geom: AppendRow dim %d, want %d", len(p), m.Cols))
	}
	m.Data = append(m.Data, p...)
	m.Rows++
}

// Clone returns a deep copy.
func (m *Matrix32) Clone() *Matrix32 {
	c := NewMatrix32(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// ToMatrix32 converts a float64 matrix to float32, rounding each value to
// nearest. The result is a fresh copy; m is not modified.
func ToMatrix32(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		//kmlint:ignore precision ToMatrix32 is the blessed f64→f32 narrowing funnel (docs/kernels.md)
		out.Data[i] = float32(v)
	}
	return out
}

// ToMatrix widens the float32 matrix back to float64 (exact: every float32
// is representable as a float64).
func (m *Matrix32) ToMatrix() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// ConvertRow32 copies one float64 row into dst, rounding to float32. dst
// must have length ≥ len(p); the written prefix is returned.
func ConvertRow32(dst []float32, p []float64) []float32 {
	dst = dst[:len(p)]
	for j, v := range p {
		//kmlint:ignore precision ConvertRow32 is the blessed f64→f32 narrowing funnel (docs/kernels.md)
		dst[j] = float32(v)
	}
	return dst
}

// Dataset32 is the float32 counterpart of Dataset: float32 points with
// optional float64 per-point weights (nil ⇒ all ones).
type Dataset32 struct {
	X      *Matrix32
	Weight []float64 // nil ⇒ all ones
}

// NewDataset32 wraps a matrix as an unweighted dataset.
func NewDataset32(x *Matrix32) *Dataset32 { return &Dataset32{X: x} }

// N returns the number of points.
func (d *Dataset32) N() int { return d.X.Rows }

// Dim returns the dimensionality.
func (d *Dataset32) Dim() int { return d.X.Cols }

// W returns the weight of point i.
func (d *Dataset32) W(i int) float64 {
	if d.Weight == nil {
		return 1
	}
	return d.Weight[i]
}

// Point returns point i as a slice aliasing the dataset storage.
func (d *Dataset32) Point(i int) []float32 { return d.X.Row(i) }

// ToDataset32 narrows a float64 dataset to float32 storage, copying the
// points (rounded to nearest) and the weight slice.
func ToDataset32(ds *Dataset) *Dataset32 {
	out := &Dataset32{X: ToMatrix32(ds.X)}
	if ds.Weight != nil {
		out.Weight = append([]float64(nil), ds.Weight...)
	}
	return out
}

// ToDataset widens the float32 dataset back to float64 storage (exact).
func (d *Dataset32) ToDataset() *Dataset {
	out := &Dataset{X: d.X.ToMatrix()}
	if d.Weight != nil {
		out.Weight = append([]float64(nil), d.Weight...)
	}
	return out
}

// Validate checks structural invariants (weight length, finite values),
// mirroring Dataset.Validate.
func (d *Dataset32) Validate() error {
	if d.X == nil {
		return fmt.Errorf("geom: dataset has nil matrix")
	}
	if len(d.X.Data) != d.X.Rows*d.X.Cols {
		return fmt.Errorf("geom: matrix storage %d != %d×%d", len(d.X.Data), d.X.Rows, d.X.Cols)
	}
	if d.Weight != nil && len(d.Weight) != d.X.Rows {
		return fmt.Errorf("geom: %d weights for %d points", len(d.Weight), d.X.Rows)
	}
	for i, v := range d.X.Data {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("geom: non-finite value at flat index %d", i)
		}
	}
	for i, w := range d.Weight {
		if !(w > 0) {
			return fmt.Errorf("geom: non-positive weight %v at %d", w, i)
		}
	}
	return nil
}

// SqNorm32 returns ‖a‖² accumulated in float32 with the same 4-chain order
// as the blocked float32 kernels.
func SqNorm32(a []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * a[i]
		s1 += a[i+1] * a[i+1]
		s2 += a[i+2] * a[i+2]
		s3 += a[i+3] * a[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * a[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// SqDist32 returns the squared Euclidean distance between two float32
// vectors via the exact (a−b)² sum, widened per term into a float64
// accumulator — the float32 path's reference arithmetic, used by its scalar
// fallbacks and by equivalence tests.
func SqDist32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("geom: SqDist32 dimension mismatch")
	}
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// SqDistNorm32 returns d²(a, b) via the norm expansion given precomputed
// float32 norms — the single-pair kernel of the float32 k-means++ D² update.
// Like SqDistNorm, absolute error scales with the norms, plus float32
// rounding of the inputs; see docs/kernels.md for the tolerance contract.
func SqDistNorm32(a, b []float32, an, bn float32) float64 {
	return clamp0(float64(an) + float64(bn) - 2*float64(dotWide32(a, b)))
}

// AddScaled32 sets dst += scale·src, widening each float32 source value —
// the accumulation step of the float32 Lloyd update, which keeps center
// sums in float64 so cluster means do not drift with cluster size.
func AddScaled32(dst []float64, scale float64, src []float32) {
	if len(dst) != len(src) {
		panic("geom: AddScaled32 dimension mismatch")
	}
	for i := range dst {
		dst[i] += scale * float64(src[i])
	}
}

// dotWide32 is the 4-accumulator unrolled float32 dot product for
// single-pair call sites.
func dotWide32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

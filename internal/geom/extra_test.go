package geom

import (
	"math"
	"runtime"
	"testing"
)

func TestDotKnown(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
	if d := Dot(nil, nil); d != 0 {
		t.Fatalf("empty Dot = %v", d)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSqNorm(t *testing.T) {
	if n := SqNorm([]float64{3, 4}); n != 25 {
		t.Fatalf("SqNorm = %v, want 25", n)
	}
	if n := SqNorm(nil); n != 0 {
		t.Fatalf("empty SqNorm = %v", n)
	}
}

func TestWorkersDefaults(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d", w)
	}
	if w := Workers(-5); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d", w)
	}
	if w := Workers(3); w != 3 {
		t.Fatalf("Workers(3) = %d", w)
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestCentroidEmptyPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Centroid(m, nil)
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Row(0)[0] = 99
	if m.Row(0)[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestSqDistBoundZeroBound(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{1, 2, 3, 4, 5}
	if d := SqDistBound(a, b, 0); d != 0 {
		t.Fatalf("identical points: %v", d)
	}
	// bound 0 with different points returns ≥ 0 immediately.
	c := []float64{2, 2, 3, 4, 5}
	if d := SqDistBound(a, c, 0); d < 0 {
		t.Fatalf("negative distance %v", d)
	}
}

func TestTotalWeightWeighted(t *testing.T) {
	ds := &Dataset{X: FromRows([][]float64{{1}, {2}}), Weight: []float64{2.5, 3.5}}
	if w := ds.TotalWeight(); math.Abs(w-6) > 1e-12 {
		t.Fatalf("TotalWeight = %v", w)
	}
}

func TestNearestSingleCenter(t *testing.T) {
	centers := FromRows([][]float64{{5, 5}})
	idx, d := Nearest([]float64{5, 6}, centers)
	if idx != 0 || d != 1 {
		t.Fatalf("Nearest = (%d, %v)", idx, d)
	}
}

func TestNearestNoCentersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Nearest([]float64{1}, &Matrix{Cols: 1})
}

package geom

// Nearest returns the index of the row of centers closest to p and the
// squared distance to it. centers must have at least one row.
func Nearest(p []float64, centers *Matrix) (int, float64) {
	if centers.Rows == 0 {
		panic("geom: Nearest with no centers")
	}
	best := 0
	bestD := SqDist(p, centers.Row(0))
	for c := 1; c < centers.Rows; c++ {
		if d := SqDistBound(p, centers.Row(c), bestD); d < bestD {
			bestD = d
			best = c
		}
	}
	return best, bestD
}

// NearestFrom is Nearest restricted to center rows in [from, centers.Rows),
// starting from a known (bestIdx, bestD) pair. k-means|| uses it to update
// cached distances against only the centers added in the current round.
func NearestFrom(p []float64, centers *Matrix, from, bestIdx int, bestD float64) (int, float64) {
	for c := from; c < centers.Rows; c++ {
		if d := SqDistBound(p, centers.Row(c), bestD); d < bestD {
			bestD = d
			bestIdx = c
		}
	}
	return bestIdx, bestD
}

// Cost returns φ_X(C) = Σ_i w_i · d²(x_i, C), the weighted k-means cost of
// the dataset against the given centers, computed serially. For the parallel
// version see lloyd.Cost.
func Cost(ds *Dataset, centers *Matrix) float64 {
	var total float64
	for i := 0; i < ds.N(); i++ {
		_, d := Nearest(ds.Point(i), centers)
		total += ds.W(i) * d
	}
	return total
}

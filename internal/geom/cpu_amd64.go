//go:build amd64 && !km_purego

package geom

// Zero-dependency CPUID feature detection for the AVX2+FMA kernel tier.
// The module is dependency-free by policy, so instead of x/sys/cpu the two
// privileged-instruction wrappers live in cpu_amd64.s and the decode logic
// here. Detection runs once at package init; the result only ever gates the
// dotf32_avx2_amd64.s kernels.

// cpuidAsm executes CPUID with the given leaf/subleaf.
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0 (requires OSXSAVE, checked by the caller).
func xgetbvAsm() (eax, edx uint32)

// hasAVX2F32 reports whether the CPU and OS support the AVX2+FMA float32
// dot kernels: AVX2 and FMA in CPUID, plus OS-managed XMM+YMM state.
var hasAVX2F32 = detectAVX2F32()

func detectAVX2F32() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled or YMM state
	// is not preserved across context switches.
	xlo, _ := xgetbvAsm()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

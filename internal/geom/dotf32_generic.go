//go:build (!amd64 && !arm64) || km_purego

package geom

// hasDotF32Asm is false on builds without SIMD kernels (architectures other
// than amd64/arm64, or the km_purego tag); the blocked float32 engine then
// always runs the pure-Go dot kernels and SetF32Asm(true) reports failure.
const hasDotF32Asm = false

// baselineF32Tier is F32TierPureGo when the build carries no assembly.
const baselineF32Tier = F32TierPureGo

// The asm entry points alias the pure-Go kernels so the dispatch sites in
// blocked32.go compile unconditionally; hasDotF32Asm keeps them unreached.
func dot2x4f32asm(a, b, c0, c1, c2, c3 []float32) (a0, a1, a2, a3, b0, b1, b2, b3 float32) {
	return dot2x4f32(a, b, c0, c1, c2, c3)
}

func dot1x4f32asm(a, c0, c1, c2, c3 []float32) (a0, a1, a2, a3 float32) {
	return dot1x4f32(a, c0, c1, c2, c3)
}

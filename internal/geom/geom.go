// Package geom provides the dense vector and matrix primitives that every
// other package builds on: row-major matrices, squared Euclidean distance
// kernels, centroids, and the Dataset container (points plus optional
// per-point weights).
//
// Distance-heavy inner loops funnel through two kernel families so the
// k-means cost model is defined in exactly one place:
//
//   - SqDist / SqDistBound — one (point, center) pair at a time, unrolled,
//     with early termination against a running best. Best for small center
//     counts, where the bound prunes most coordinates.
//   - The blocked engine (blocked.go) — NearestBlocked, PairwiseSqDist,
//     RowSqNorms and pooled Scratch buffers. Distances are expanded as
//     ‖x‖² + ‖c‖² − 2⟨x,c⟩ with cached norms, and point×center tiles are
//     computed with a register-blocked inner-product kernel sized so the
//     center tile stays in L1. Best from a handful of centers up, and the
//     backbone of k-means|| round updates, Step 7 weighting, Lloyd
//     assignment and batch serving.
//
// UseBlocked picks between the two from a measured crossover; SetKernel
// pins one for benchmarks and equivalence tests.
package geom

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix. Row i occupies
// Data[i*Cols : (i+1)*Cols]. The layout is chosen so that a "point" is a
// contiguous slice, which keeps the distance kernels cache-friendly and lets
// callers pass rows around without copying.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("geom: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return &Matrix{}
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			panic(fmt.Sprintf("geom: ragged rows: row %d has %d cols, want %d", i, len(r), d))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// RowRange returns a value view of rows [lo, hi) sharing the backing
// storage. The blocked kernels take matrix views, so per-chunk and
// per-round sub-scans need no copying.
func (m *Matrix) RowRange(lo, hi int) Matrix {
	return Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// CopyRow copies row i into dst, which must have length Cols.
func (m *Matrix) CopyRow(i int, dst []float64) {
	copy(dst, m.Row(i))
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Reserve grows the backing storage so the matrix can hold at least rows
// rows without reallocating. Callers that append in a loop with a known
// upper bound (e.g. k-means|| collecting ~1+r·ℓ candidates) reserve once so
// AppendRow never copies. No-op when Cols is still unknown or capacity is
// already sufficient.
func (m *Matrix) Reserve(rows int) {
	if m.Cols <= 0 || rows <= 0 {
		return
	}
	need := rows * m.Cols
	if cap(m.Data) >= need {
		return
	}
	buf := make([]float64, len(m.Data), need)
	copy(buf, m.Data)
	m.Data = buf
}

// AppendRow grows the matrix by one row (copying p). Amortized O(Cols).
func (m *Matrix) AppendRow(p []float64) {
	if m.Rows == 0 && m.Cols == 0 {
		m.Cols = len(p)
	}
	if len(p) != m.Cols {
		panic(fmt.Sprintf("geom: AppendRow dim %d, want %d", len(p), m.Cols))
	}
	m.Data = append(m.Data, p...)
	m.Rows++
}

// SqDist returns the squared Euclidean distance between equal-length vectors
// a and b. The loop is unrolled 4-wide; for the dimensionalities in the paper
// (15–58) this is measurably faster than the naive loop and exact enough
// (summation order is fixed, keeping results deterministic).
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("geom: SqDist dimension mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// SqDistBound is SqDist with early termination: it returns a value ≥ bound as
// soon as the partial sum exceeds bound. Nearest-center search passes the
// best distance so far, which skips most of the work for far-away centers.
func SqDistBound(a, b []float64, bound float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3
		if s >= bound {
			return s
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("geom: Dot dimension mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SqNorm returns ‖a‖².
func SqNorm(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return s
}

// AddScaled sets dst += scale * src.
func AddScaled(dst []float64, scale float64, src []float64) {
	if len(dst) != len(src) {
		panic("geom: AddScaled dimension mismatch")
	}
	for i := range dst {
		dst[i] += scale * src[i]
	}
}

// Scale multiplies every element of a by s in place.
func Scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Centroid returns the unweighted mean of the given rows of m. It panics if
// idx is empty.
func Centroid(m *Matrix, idx []int) []float64 {
	if len(idx) == 0 {
		panic("geom: Centroid of empty set")
	}
	c := make([]float64, m.Cols)
	for _, i := range idx {
		AddScaled(c, 1, m.Row(i))
	}
	Scale(c, 1/float64(len(idx)))
	return c
}

// Dataset is a set of points with optional per-point positive weights. A nil
// Weight slice means every point has weight 1 (the common unweighted case);
// this avoids allocating n floats for the large raw datasets.
type Dataset struct {
	X      *Matrix
	Weight []float64 // nil ⇒ all ones
}

// NewDataset wraps a matrix as an unweighted dataset.
func NewDataset(x *Matrix) *Dataset { return &Dataset{X: x} }

// N returns the number of points.
func (d *Dataset) N() int { return d.X.Rows }

// Dim returns the dimensionality.
func (d *Dataset) Dim() int { return d.X.Cols }

// W returns the weight of point i.
func (d *Dataset) W(i int) float64 {
	if d.Weight == nil {
		return 1
	}
	return d.Weight[i]
}

// TotalWeight returns the sum of all point weights.
func (d *Dataset) TotalWeight() float64 {
	if d.Weight == nil {
		return float64(d.N())
	}
	var s float64
	for _, w := range d.Weight {
		s += w
	}
	return s
}

// Point returns point i as a slice aliasing the dataset storage.
func (d *Dataset) Point(i int) []float64 { return d.X.Row(i) }

// Subset returns a new dataset containing the given rows (copied), carrying
// weights along when present.
func (d *Dataset) Subset(idx []int) *Dataset {
	m := NewMatrix(len(idx), d.Dim())
	var w []float64
	if d.Weight != nil {
		w = make([]float64, len(idx))
	}
	for j, i := range idx {
		copy(m.Row(j), d.Point(i))
		if w != nil {
			w[j] = d.Weight[i]
		}
	}
	return &Dataset{X: m, Weight: w}
}

// Validate checks structural invariants (weight length, finite values) and
// returns a descriptive error. Generators and loaders call it in tests.
func (d *Dataset) Validate() error {
	if d.X == nil {
		return fmt.Errorf("geom: dataset has nil matrix")
	}
	if len(d.X.Data) != d.X.Rows*d.X.Cols {
		return fmt.Errorf("geom: matrix storage %d != %d×%d", len(d.X.Data), d.X.Rows, d.X.Cols)
	}
	if d.Weight != nil && len(d.Weight) != d.X.Rows {
		return fmt.Errorf("geom: %d weights for %d points", len(d.Weight), d.X.Rows)
	}
	for i, v := range d.X.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("geom: non-finite value at flat index %d", i)
		}
	}
	for i, w := range d.Weight {
		if !(w > 0) {
			return fmt.Errorf("geom: non-positive weight %v at %d", w, i)
		}
	}
	return nil
}

package geom

import (
	"fmt"
	"math"
	"sync"
)

// This file is the float32 instantiation of the blocked pairwise-distance
// engine (blocked.go): the same ‖x‖² + ‖c‖² − 2⟨x,c⟩ expansion with cached
// norms and the same point×center tiling, over float32 storage. Streaming
// the float32 payload halves memory traffic on every pass, and the inner
// dot-product tiles are contiguous and bounds-check-free so the 2pt×4ctr
// kernel compiles to straight-line multiply-add chains; the inner dots
// additionally dispatch through the runtime kernel tier ladder (f32tier.go):
// SSE2 or AVX2+FMA assembly on amd64, NEON on arm64, unless the km_purego
// build tag or SetF32Asm(false)/SetF32Tier pins the pure-Go kernels.
//
// Precision contract (see docs/kernels.md): float32 results are NOT
// bit-comparable to the float64 engine. For data with ‖x‖ ≲ 1e3 and dims
// ≤ 128 the kernels keep relative cost error within ~1e-6 and nearest
// assignments agree with the float64 reference on ≥ 99.9% of points; exact
// ties may break differently. Results ARE deterministic for a fixed kernel
// tier: each (point, center) inner product is accumulated in a fixed
// order that depends only on the dimension and the center's tile-ladder
// position, never on tiling position or worker count.

// Scratch32 holds the reusable tile buffers of the float32 blocked kernels,
// mirroring Scratch. Not safe for concurrent use; take one per worker.
type Scratch32 struct {
	pn     []float32 // point-tile squared norms
	gather []float32 // contiguous float32 copy of a point tile
	d2     []float32 // tile nearest distances
	idx    []int32   // tile nearest indices
}

var scratch32Pool = sync.Pool{New: func() any { return new(Scratch32) }}

// GetScratch32 returns a Scratch32 from the shared pool.
func GetScratch32() *Scratch32 { return scratch32Pool.Get().(*Scratch32) }

// Release returns the Scratch32 to the pool. The caller must not use it
// after.
func (s *Scratch32) Release() { scratch32Pool.Put(s) }

func growF32(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	return (*buf)[:n]
}

// RowSqNorms32 returns ‖row‖² for every row of m, reusing dst when it has
// capacity — the float32 analogue of RowSqNorms.
func RowSqNorms32(m *Matrix32, dst []float32) []float32 {
	dst = growF32(&dst, m.Rows)
	for i := 0; i < m.Rows; i++ {
		dst[i] = SqNorm32(m.Row(i))
	}
	return dst
}

// NearestBlocked32 computes, for every row of pts, the index of the nearest
// row of centers and the squared distance to it (as float32), writing d2[i]
// and, when idx is non-nil, idx[i]. cNorms must be RowSqNorms32(centers, …).
// Ties go to the lowest center index. Mirrors NearestBlocked.
func NearestBlocked32(pts, centers *Matrix32, cNorms []float32, idx []int32, d2 []float32, sc *Scratch32) {
	n, d, k := pts.Rows, pts.Cols, centers.Rows
	if k == 0 {
		panic("geom: NearestBlocked32 with no centers")
	}
	if centers.Cols != d {
		panic(fmt.Sprintf("geom: NearestBlocked32 dim mismatch: points %d, centers %d", d, centers.Cols))
	}
	if len(cNorms) != k {
		panic(fmt.Sprintf("geom: NearestBlocked32 got %d center norms for %d centers", len(cNorms), k))
	}
	if len(d2) < n || (idx != nil && len(idx) < n) {
		panic("geom: NearestBlocked32 output shorter than points")
	}
	for lo := 0; lo < n; lo += tilePoints {
		hi := lo + tilePoints
		if hi > n {
			hi = n
		}
		var idxTile []int32
		if idx != nil {
			idxTile = idx[lo:hi]
		}
		nearestTile32(pts, lo, hi, centers, cNorms, idxTile, d2[lo:hi], sc)
	}
}

// NearestBlockedRows32 is the serving-path entry point: float64 query rows
// (the public API's representation) against float32 centers. Each tile of
// queries is gathered into contiguous float32 scratch — one rounding per
// coordinate, amortized over the k-center scan — then runs the blocked
// kernels; out[i] receives the nearest-center index of points[i].
func NearestBlockedRows32(points [][]float64, centers *Matrix32, cNorms []float32, out []int, sc *Scratch32) {
	d := centers.Cols
	n := len(points)
	for lo := 0; lo < n; lo += tilePoints {
		hi := lo + tilePoints
		if hi > n {
			hi = n
		}
		m := hi - lo
		g := growF32(&sc.gather, m*d)
		for i := 0; i < m; i++ {
			ConvertRow32(g[i*d:(i+1)*d], points[lo+i])
		}
		view := Matrix32{Rows: m, Cols: d, Data: g}
		tIdx := growI32(&sc.idx, m)
		tD2 := growF32(&sc.d2, m)
		nearestTile32(&view, 0, m, centers, cNorms, tIdx, tD2, sc)
		for i := 0; i < m; i++ {
			out[lo+i] = int(tIdx[i])
		}
	}
}

// VisitNearest32 runs the blocked float32 nearest-center search over rows
// [lo, hi) of pts in engine-tile steps, invoking visit(i, idx, d2) for every
// row in ascending order — the float32 building block of Lloyd assignment
// and the k-means|| D² round updates. The distance is widened to float64
// for the visitor so downstream sums accumulate in double precision.
func VisitNearest32(pts, centers *Matrix32, cNorms []float32, lo, hi int, sc *Scratch32, withIdx bool, visit func(i int, idx int32, d2 float64)) {
	idxT := growI32(&sc.idx, tilePoints)
	d2T := growF32(&sc.d2, tilePoints)
	if !withIdx {
		idxT = nil
	}
	for tLo := lo; tLo < hi; tLo += tilePoints {
		tHi := tLo + tilePoints
		if tHi > hi {
			tHi = hi
		}
		view := pts.RowRange(tLo, tHi)
		NearestBlocked32(&view, centers, cNorms, idxT, d2T, sc)
		for i := tLo; i < tHi; i++ {
			var ix int32
			if idxT != nil {
				ix = idxT[i-tLo]
			}
			visit(i, ix, float64(d2T[i-tLo]))
		}
	}
}

// nearestTile32 runs the blocked nearest-center search for point rows
// [pLo, pHi) of pts — the float32 twin of nearestTile, with the inner
// products dispatched to the assembly kernels when enabled.
func nearestTile32(pts *Matrix32, pLo, pHi int, centers *Matrix32, cNorms []float32, idxTile []int32, d2Tile []float32, sc *Scratch32) {
	m := pHi - pLo
	k := centers.Rows
	tier := activeF32Tier()
	pn := growF32(&sc.pn, m)
	for i := 0; i < m; i++ {
		pn[i] = SqNorm32(pts.Row(pLo + i))
	}
	inf := float32(math.Inf(1))
	for i := 0; i < m; i++ {
		d2Tile[i] = inf
		if idxTile != nil {
			idxTile[i] = 0
		}
	}
	for cLo := 0; cLo < k; cLo += tileCenters {
		cHi := cLo + tileCenters
		if cHi > k {
			cHi = k
		}
		// Two points at a time against the center tile.
		i := 0
		for ; i+2 <= m; i += 2 {
			pa, pb := pts.Row(pLo+i), pts.Row(pLo+i+1)
			na, nb := pn[i], pn[i+1]
			ba, bb := d2Tile[i], d2Tile[i+1]
			var ia, ib int32
			if idxTile != nil {
				ia, ib = idxTile[i], idxTile[i+1]
			}
			c := cLo
			for ; c+4 <= cHi; c += 4 {
				var a0, a1, a2, a3, b0, b1, b2, b3 float32
				switch tier {
				case F32TierAVX2:
					a0, a1, a2, a3, b0, b1, b2, b3 = dot2x4f32avx(pa, pb,
						centers.Row(c), centers.Row(c+1), centers.Row(c+2), centers.Row(c+3))
				case F32TierPureGo:
					a0, a1, a2, a3, b0, b1, b2, b3 = dot2x4f32(pa, pb,
						centers.Row(c), centers.Row(c+1), centers.Row(c+2), centers.Row(c+3))
				default: // baseline SIMD: SSE2 on amd64, NEON on arm64
					a0, a1, a2, a3, b0, b1, b2, b3 = dot2x4f32asm(pa, pb,
						centers.Row(c), centers.Row(c+1), centers.Row(c+2), centers.Row(c+3))
				}
				n0, n1, n2, n3 := cNorms[c], cNorms[c+1], cNorms[c+2], cNorms[c+3]
				if v := clamp032(na + n0 - 2*a0); v < ba {
					ba, ia = v, int32(c)
				}
				if v := clamp032(na + n1 - 2*a1); v < ba {
					ba, ia = v, int32(c+1)
				}
				if v := clamp032(na + n2 - 2*a2); v < ba {
					ba, ia = v, int32(c+2)
				}
				if v := clamp032(na + n3 - 2*a3); v < ba {
					ba, ia = v, int32(c+3)
				}
				if v := clamp032(nb + n0 - 2*b0); v < bb {
					bb, ib = v, int32(c)
				}
				if v := clamp032(nb + n1 - 2*b1); v < bb {
					bb, ib = v, int32(c+1)
				}
				if v := clamp032(nb + n2 - 2*b2); v < bb {
					bb, ib = v, int32(c+2)
				}
				if v := clamp032(nb + n3 - 2*b3); v < bb {
					bb, ib = v, int32(c+3)
				}
			}
			for ; c < cHi; c++ {
				row := centers.Row(c)
				da, db := dot2x1f32(pa, pb, row)
				if v := clamp032(na + cNorms[c] - 2*da); v < ba {
					ba, ia = v, int32(c)
				}
				if v := clamp032(nb + cNorms[c] - 2*db); v < bb {
					bb, ib = v, int32(c)
				}
			}
			d2Tile[i], d2Tile[i+1] = ba, bb
			if idxTile != nil {
				idxTile[i], idxTile[i+1] = ia, ib
			}
		}
		if i < m { // odd tail point
			p := pts.Row(pLo + i)
			np := pn[i]
			best := d2Tile[i]
			var bi int32
			if idxTile != nil {
				bi = idxTile[i]
			}
			c := cLo
			for ; c+4 <= cHi; c += 4 {
				var a0, a1, a2, a3 float32
				switch tier {
				case F32TierAVX2:
					a0, a1, a2, a3 = dot1x4f32avx(p,
						centers.Row(c), centers.Row(c+1), centers.Row(c+2), centers.Row(c+3))
				case F32TierPureGo:
					a0, a1, a2, a3 = dot1x4f32(p,
						centers.Row(c), centers.Row(c+1), centers.Row(c+2), centers.Row(c+3))
				default:
					a0, a1, a2, a3 = dot1x4f32asm(p,
						centers.Row(c), centers.Row(c+1), centers.Row(c+2), centers.Row(c+3))
				}
				if v := clamp032(np + cNorms[c] - 2*a0); v < best {
					best, bi = v, int32(c)
				}
				if v := clamp032(np + cNorms[c+1] - 2*a1); v < best {
					best, bi = v, int32(c+1)
				}
				if v := clamp032(np + cNorms[c+2] - 2*a2); v < best {
					best, bi = v, int32(c+2)
				}
				if v := clamp032(np + cNorms[c+3] - 2*a3); v < best {
					best, bi = v, int32(c+3)
				}
			}
			for ; c < cHi; c++ {
				da := dotWide32(p, centers.Row(c))
				if v := clamp032(np + cNorms[c] - 2*da); v < best {
					best, bi = v, int32(c)
				}
			}
			d2Tile[i] = best
			if idxTile != nil {
				idxTile[i] = bi
			}
		}
	}
}

// PairwiseSqDist32 fills out with the full pts.Rows×centers.Rows block of
// float32 squared distances, row-major, using the same norm-expansion
// kernels as NearestBlocked32. pNorms/cNorms may be nil (computed
// internally, allocating); pass cached norms on hot paths.
func PairwiseSqDist32(pts, centers *Matrix32, pNorms, cNorms []float32, out []float32) {
	n, d, k := pts.Rows, pts.Cols, centers.Rows
	if centers.Cols != d {
		panic(fmt.Sprintf("geom: PairwiseSqDist32 dim mismatch: points %d, centers %d", d, centers.Cols))
	}
	if len(out) < n*k {
		panic("geom: PairwiseSqDist32 output too short")
	}
	if pNorms == nil {
		pNorms = RowSqNorms32(pts, nil)
	}
	if cNorms == nil {
		cNorms = RowSqNorms32(centers, nil)
	}
	tier := activeF32Tier()
	for i := 0; i < n; i++ {
		sqDistRow32(tier, pts.Row(i), pNorms[i], centers, cNorms, out[i*k:(i+1)*k])
	}
}

// SqDistRow32 fills out[c] with the float32 squared distance from point p
// (with cached squared norm pn) to every row of centers — one row of
// PairwiseSqDist32, for callers that stream points through their own loop
// structure (the bounded Lloyd variants' full scans). It runs the same
// tier-dispatched 1×4 dot kernels, so the values match PairwiseSqDist32 and
// NearestBlocked32 bit for bit.
func SqDistRow32(p []float32, pn float32, centers *Matrix32, cNorms []float32, out []float32) {
	if len(out) < centers.Rows {
		panic("geom: SqDistRow32 output too short")
	}
	sqDistRow32(activeF32Tier(), p, pn, centers, cNorms, out)
}

// sqDistRow32 is the shared one-point-against-all-centers body: four centers
// per dot-kernel call, scalar tail.
func sqDistRow32(tier F32Tier, p []float32, np float32, centers *Matrix32, cNorms []float32, row []float32) {
	k := centers.Rows
	c := 0
	for ; c+4 <= k; c += 4 {
		var a0, a1, a2, a3 float32
		switch tier {
		case F32TierAVX2:
			a0, a1, a2, a3 = dot1x4f32avx(p,
				centers.Row(c), centers.Row(c+1), centers.Row(c+2), centers.Row(c+3))
		case F32TierPureGo:
			a0, a1, a2, a3 = dot1x4f32(p,
				centers.Row(c), centers.Row(c+1), centers.Row(c+2), centers.Row(c+3))
		default:
			a0, a1, a2, a3 = dot1x4f32asm(p,
				centers.Row(c), centers.Row(c+1), centers.Row(c+2), centers.Row(c+3))
		}
		row[c] = clamp032(np + cNorms[c] - 2*a0)
		row[c+1] = clamp032(np + cNorms[c+1] - 2*a1)
		row[c+2] = clamp032(np + cNorms[c+2] - 2*a2)
		row[c+3] = clamp032(np + cNorms[c+3] - 2*a3)
	}
	for ; c < k; c++ {
		row[c] = clamp032(np + cNorms[c] - 2*dotWide32(p, centers.Row(c)))
	}
}

func clamp032(v float32) float32 {
	if v < 0 {
		return 0
	}
	return v
}

// dot2x4f32 computes the 8 float32 inner products of points {a, b} against
// centers {c0..c3}. The slices are re-sliced to a common length up front so
// the loop body carries no bounds checks; each product runs one sequential
// accumulator, so its value depends only on the dimension, never on where
// the pair lands in the tiling.
func dot2x4f32(a, b, c0, c1, c2, c3 []float32) (a0, a1, a2, a3, b0, b1, b2, b3 float32) {
	d := len(a)
	if d == 0 {
		return
	}
	b = b[:d]
	c0 = c0[:d]
	c1 = c1[:d]
	c2 = c2[:d]
	c3 = c3[:d]
	for i := 0; i < d; i++ {
		av, bv := a[i], b[i]
		w0, w1, w2, w3 := c0[i], c1[i], c2[i], c3[i]
		a0 += av * w0
		a1 += av * w1
		a2 += av * w2
		a3 += av * w3
		b0 += bv * w0
		b1 += bv * w1
		b2 += bv * w2
		b3 += bv * w3
	}
	return
}

// dot1x4f32 is dot2x4f32 for a single point.
func dot1x4f32(a, c0, c1, c2, c3 []float32) (a0, a1, a2, a3 float32) {
	d := len(a)
	if d == 0 {
		return
	}
	c0 = c0[:d]
	c1 = c1[:d]
	c2 = c2[:d]
	c3 = c3[:d]
	for i := 0; i < d; i++ {
		av := a[i]
		a0 += av * c0[i]
		a1 += av * c1[i]
		a2 += av * c2[i]
		a3 += av * c3[i]
	}
	return
}

// dot2x1f32 computes ⟨a,c⟩ and ⟨b,c⟩ with the same 4-accumulator order as
// dotWide32, so a center-tail inner product has one fixed value whether the
// point is processed in a 2-point pair or as the odd tail of a tile.
func dot2x1f32(a, b, c []float32) (da, db float32) {
	d := len(a)
	if d == 0 {
		return
	}
	b = b[:d]
	c = c[:d]
	var a0, a1, a2, a3, b0, b1, b2, b3 float32
	i := 0
	for ; i+4 <= d; i += 4 {
		w0, w1, w2, w3 := c[i], c[i+1], c[i+2], c[i+3]
		a0 += a[i] * w0
		a1 += a[i+1] * w1
		a2 += a[i+2] * w2
		a3 += a[i+3] * w3
		b0 += b[i] * w0
		b1 += b[i+1] * w1
		b2 += b[i+2] * w2
		b3 += b[i+3] * w3
	}
	for ; i < d; i++ {
		a0 += a[i] * c[i]
		b0 += b[i] * c[i]
	}
	return (a0 + a1) + (a2 + a3), (b0 + b1) + (b2 + b3)
}

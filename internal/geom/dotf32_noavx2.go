//go:build !amd64 || km_purego

package geom

// hasAVX2F32 is false on builds without the AVX2 kernels (non-amd64, or
// the km_purego tag); the tier ladder then tops out at the baseline SIMD
// tier (or pure Go) and SetF32Tier(F32TierAVX2) reports failure.
const hasAVX2F32 = false

// The AVX2 entry points alias the pure-Go kernels so the dispatch sites in
// blocked32.go compile unconditionally; hasAVX2F32 keeps them unreached.
func dot2x4f32avx(a, b, c0, c1, c2, c3 []float32) (a0, a1, a2, a3, b0, b1, b2, b3 float32) {
	return dot2x4f32(a, b, c0, c1, c2, c3)
}

func dot1x4f32avx(a, c0, c1, c2, c3 []float32) (a0, a1, a2, a3 float32) {
	return dot1x4f32(a, c0, c1, c2, c3)
}

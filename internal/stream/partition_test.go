package stream

import (
	"math"
	"testing"

	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
)

func blobs(t testing.TB, k, m, dim int, sep float64, seedVal uint64) *geom.Dataset {
	t.Helper()
	r := rng.New(seedVal)
	truth := geom.NewMatrix(k, dim)
	for i := range truth.Data {
		truth.Data[i] = sep * r.NormFloat64()
	}
	x := geom.NewMatrix(k*m, dim)
	for c := 0; c < k; c++ {
		for i := 0; i < m; i++ {
			row := x.Row(c*m + i)
			for j := 0; j < dim; j++ {
				row[j] = truth.Row(c)[j] + r.NormFloat64()
			}
		}
	}
	return geom.NewDataset(x)
}

func TestDefaultM(t *testing.T) {
	if m := DefaultM(4800000, 500); m != 98 {
		t.Fatalf("DefaultM(4.8M, 500) = %d, want 98", m)
	}
	if m := DefaultM(100, 100); m != 1 {
		t.Fatalf("DefaultM(100,100) = %d, want 1", m)
	}
	if m := DefaultM(0, 5); m != 1 {
		t.Fatalf("DefaultM(0,5) = %d, want 1", m)
	}
}

func TestPartitionShape(t *testing.T) {
	ds := blobs(t, 5, 200, 6, 30, 1)
	centers, stats := Partition(ds, Config{K: 5, Seed: 2})
	if centers.Rows != 5 || centers.Cols != 6 {
		t.Fatalf("got %dx%d centers", centers.Rows, centers.Cols)
	}
	if stats.Groups != DefaultM(1000, 5) {
		t.Fatalf("groups = %d", stats.Groups)
	}
	if stats.Intermediate < 5 {
		t.Fatalf("intermediate = %d", stats.Intermediate)
	}
	if stats.SeedCost <= 0 || math.IsNaN(stats.SeedCost) {
		t.Fatalf("seed cost %v", stats.SeedCost)
	}
}

func TestIntermediateSizeScales(t *testing.T) {
	// Intermediate set should be on the order of m·3k·ln k and in particular
	// much larger than k (the structural property behind Table 5).
	ds := blobs(t, 4, 500, 5, 20, 3)
	k := 20
	_, stats := Partition(ds, Config{K: k, Seed: 4})
	if stats.Intermediate <= k {
		t.Fatalf("intermediate %d not > k=%d", stats.Intermediate, k)
	}
	bound := stats.Groups * 3 * int(math.Ceil(math.Log(float64(k)))) * k
	if stats.Intermediate > bound {
		t.Fatalf("intermediate %d exceeds m·k·3lnk = %d", stats.Intermediate, bound)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	ds := blobs(t, 4, 150, 5, 25, 5)
	c1, s1 := Partition(ds, Config{K: 4, Seed: 6, Parallelism: 1})
	c2, s2 := Partition(ds, Config{K: 4, Seed: 6, Parallelism: 8})
	if s1.Intermediate != s2.Intermediate {
		t.Fatalf("intermediate differs: %d vs %d", s1.Intermediate, s2.Intermediate)
	}
	for i := range c1.Data {
		if c1.Data[i] != c2.Data[i] {
			t.Fatal("Partition result depends on parallelism")
		}
	}
}

func TestPartitionBeatsRandom(t *testing.T) {
	ds := blobs(t, 10, 200, 8, 60, 7)
	var part, rand float64
	for s := 0; s < 5; s++ {
		_, st := Partition(ds, Config{K: 10, Seed: uint64(s)})
		part += st.SeedCost
		rc := seed.Random(ds, 10, rng.New(uint64(100+s)))
		rand += lloyd.Cost(ds, rc, 0)
	}
	if part*2 > rand {
		t.Fatalf("Partition seed cost %v not ≪ Random %v", part/5, rand/5)
	}
}

func TestPartitionSingleGroup(t *testing.T) {
	// m=1 degenerates to k-means# on the whole data then recluster.
	ds := blobs(t, 3, 60, 4, 30, 8)
	centers, stats := Partition(ds, Config{K: 3, M: 1, Seed: 9})
	if stats.Groups != 1 {
		t.Fatalf("groups = %d", stats.Groups)
	}
	if centers.Rows != 3 {
		t.Fatalf("centers = %d", centers.Rows)
	}
}

func TestPartitionTinyData(t *testing.T) {
	ds := blobs(t, 1, 8, 3, 1, 10)
	centers, _ := Partition(ds, Config{K: 3, Seed: 11})
	if centers.Rows > 3 || centers.Rows < 1 {
		t.Fatalf("centers = %d", centers.Rows)
	}
}

func TestKMeansSharpCoversBlobs(t *testing.T) {
	// k-means# over-samples, so all well-separated blobs should be covered.
	const k = 5
	ds := blobs(t, k, 100, 3, 100, 12)
	covered := 0
	const trials = 20
	for s := 0; s < trials; s++ {
		c := KMeansSharp(ds, k, 3*int(math.Ceil(math.Log(k))), rng.New(uint64(s)))
		hit := map[int]bool{}
		for i := 0; i < c.Rows; i++ {
			for p := 0; p < ds.N(); p++ {
				if geom.SqDist(ds.Point(p), c.Row(i)) == 0 {
					hit[p/100] = true
					break
				}
			}
		}
		if len(hit) == k {
			covered++
		}
	}
	if covered < trials*9/10 {
		t.Fatalf("k-means# covered all blobs only %d/%d times", covered, trials)
	}
}

func BenchmarkPartition(b *testing.B) {
	ds := blobs(b, 10, 500, 10, 20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(ds, Config{K: 10, Seed: uint64(i)})
	}
}

package stream

import (
	"testing"

	"kmeansll/internal/geom"
	"kmeansll/internal/rng"
)

func tinyBlobs(k, m, dim int, seedVal uint64) *geom.Dataset {
	r := rng.New(seedVal)
	x := geom.NewMatrix(k*m, dim)
	for c := 0; c < k; c++ {
		for i := 0; i < m; i++ {
			row := x.Row(c*m + i)
			for j := 0; j < dim; j++ {
				row[j] = 50*float64(c) + r.NormFloat64()
			}
		}
	}
	return geom.NewDataset(x)
}

// M far beyond n: groups clamp to n (each a single point) and the run still
// returns k valid centers.
func TestPartitionGroupsClampToN(t *testing.T) {
	ds := tinyBlobs(2, 4, 3, 1) // 8 points
	centers, stats := Partition(ds, Config{K: 2, M: 1000, Seed: 2})
	if centers.Rows != 2 {
		t.Fatalf("got %d centers", centers.Rows)
	}
	if stats.Groups != 8 {
		t.Fatalf("groups = %d, want 8", stats.Groups)
	}
	if stats.Intermediate < 2 || stats.Intermediate > 8 {
		t.Fatalf("intermediate = %d out of [2, 8]", stats.Intermediate)
	}
}

// K = 1 drives the k-means# batch size to its floor (3·⌈ln 1⌉ = 0 → 1) and
// the whole pipeline degenerates gracefully to a centroid-like answer.
func TestPartitionKOne(t *testing.T) {
	ds := tinyBlobs(1, 30, 4, 3)
	centers, stats := Partition(ds, Config{K: 1, Seed: 4})
	if centers.Rows != 1 {
		t.Fatalf("got %d centers", centers.Rows)
	}
	if stats.SeedCost < 0 {
		t.Fatalf("negative cost %v", stats.SeedCost)
	}
}

// BatchPerRound = 1 (the minimum): k-means# still produces at least one
// center per group and at most k·batch.
func TestKMeansSharpUnitBatch(t *testing.T) {
	ds := tinyBlobs(3, 20, 3, 5)
	centers := KMeansSharp(ds, 3, 1, rng.New(6))
	if centers.Rows < 1 || centers.Rows > 3 {
		t.Fatalf("k-means# with batch 1 produced %d centers, want 1..3", centers.Rows)
	}
}

// KMeansSharp on a dataset smaller than one batch: the cap clamps to n and
// every center is a distinct input point.
func TestKMeansSharpTinyDataset(t *testing.T) {
	ds := tinyBlobs(1, 2, 3, 7) // 2 points
	centers := KMeansSharp(ds, 5, 10, rng.New(8))
	if centers.Rows > 2 {
		t.Fatalf("more centers (%d) than points (2)", centers.Rows)
	}
}

// Weighted inputs flow through the group clustering: total group weights
// must add up to the dataset's total weight.
func TestPartitionWeighted(t *testing.T) {
	ds := tinyBlobs(2, 25, 3, 9)
	w := make([]float64, ds.N())
	r := rng.New(10)
	var total float64
	for i := range w {
		w[i] = 1 + r.Float64()
		total += w[i]
	}
	ds.Weight = w
	centers, stats := Partition(ds, Config{K: 2, Seed: 11})
	if centers.Rows != 2 {
		t.Fatalf("got %d centers", centers.Rows)
	}
	if stats.SeedCost <= 0 {
		t.Fatalf("cost %v", stats.SeedCost)
	}
}

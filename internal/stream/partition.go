// Package stream implements the Partition baseline the paper compares
// against (§4.2.1): the one-pass streaming k-means approximation of Ailon,
// Jaiswal and Monteleoni (NIPS 2009), built on the divide-and-conquer scheme
// of Guha et al.
//
// Partition(m) splits the input into m equal groups. Each group is clustered
// with k-means# — a batched k-means++ variant that draws 3·⌈ln k⌉ centers per
// iteration for k iterations, giving O(k·log k) centers per group with a
// constant-factor guarantee. The union of the per-group weighted centers is
// then reclustered to k with (vanilla, weighted) k-means++, mirroring the
// final step of k-means||.
//
// The paper's setting m = √(n/k) minimizes both the per-machine memory and —
// in the parallel implementation, where each group runs on its own machine —
// the total running time. Note the structural contrast the paper draws: the
// intermediate set is Θ(√(nk)·log k), orders of magnitude larger than
// k-means||'s r·ℓ (Table 5), and the parallelism is capped at m machines.
package stream

import (
	"math"

	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
)

// Config parameterizes a Partition run.
type Config struct {
	// K is the number of final centers. Required.
	K int
	// M is the number of groups; 0 means round(√(n/K)), the paper's setting.
	M int
	// BatchPerRound overrides the 3·⌈ln K⌉ centers drawn per k-means#
	// iteration. 0 means the default.
	BatchPerRound int
	// Parallelism bounds how many groups are clustered concurrently
	// (the paper's "m machines"); <1 = all CPUs.
	Parallelism int
	// Seed makes the run deterministic.
	Seed uint64
}

// Stats reports what a Partition run did.
type Stats struct {
	// Groups is the number of groups m actually used.
	Groups int
	// Intermediate is the total number of per-group centers before the final
	// reclustering — the Partition rows of Table 5.
	Intermediate int
	// SeedCost is φ_X of the final k centers.
	SeedCost float64
}

// DefaultM returns the paper's group count √(n/k), at least 1.
func DefaultM(n, k int) int {
	if n <= 0 || k <= 0 {
		return 1
	}
	m := int(math.Round(math.Sqrt(float64(n) / float64(k))))
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return m
}

// Partition runs the baseline and returns k centers plus run statistics.
func Partition(ds *geom.Dataset, cfg Config) (*geom.Matrix, Stats) {
	if cfg.K <= 0 {
		panic("stream: Config.K must be positive")
	}
	n := ds.N()
	if n == 0 {
		panic("stream: empty dataset")
	}
	m := cfg.M
	if m <= 0 {
		m = DefaultM(n, cfg.K)
	}
	if m > n {
		m = n
	}
	batch := cfg.BatchPerRound
	if batch <= 0 {
		batch = 3 * int(math.Ceil(math.Log(float64(cfg.K))))
		if batch < 1 {
			batch = 1
		}
	}

	// Shuffle point indices so groups are random (the stream order of the
	// original algorithm), then slice into m equal groups.
	root := rng.New(cfg.Seed)
	perm := root.Perm(n)
	groups := make([][]int, m)
	for g := 0; g < m; g++ {
		lo := g * n / m
		hi := (g + 1) * n / m
		groups[g] = perm[lo:hi]
	}

	// Cluster each group with k-means#, in parallel across groups. Each
	// group gets a deterministic RNG stream keyed by its index.
	type groupResult struct {
		centers *geom.Matrix
		weights []float64
	}
	results := make([]groupResult, m)
	baseSeed := cfg.Seed
	geom.ParallelFor(m, cfg.Parallelism, func(_, lo, hi int) {
		for g := lo; g < hi; g++ {
			gr := rng.New(baseSeed).Split(uint64(g) + 1)
			sub := ds.Subset(groups[g])
			centers := KMeansSharp(sub, cfg.K, batch, gr)
			w := groupWeights(sub, centers)
			results[g] = groupResult{centers: centers, weights: w}
		}
	})

	// Union the weighted candidates.
	union := geom.NewMatrix(0, ds.Dim())
	union.Cols = ds.Dim()
	var weights []float64
	for _, r := range results {
		for i := 0; i < r.centers.Rows; i++ {
			if r.weights[i] <= 0 {
				continue
			}
			union.AppendRow(r.centers.Row(i))
			weights = append(weights, r.weights[i])
		}
	}
	stats := Stats{Groups: m, Intermediate: union.Rows}

	// Final reclustering with weighted k-means++ (sequential, as in the
	// second round of the paper's parallel realization).
	cds := &geom.Dataset{X: union, Weight: weights}
	final := seed.KMeansPP(cds, cfg.K, root.Split(0), cfg.Parallelism)
	stats.SeedCost = lloyd.Cost(ds, final, cfg.Parallelism)
	return final, stats
}

// KMeansSharp is k-means# (Ailon et al., Algorithm 3): like k-means++, but
// every iteration draws `batch` points from the joint D² distribution, for k
// iterations. The first iteration draws uniformly. batch ≤ 0 selects the
// paper's 3·⌈ln k⌉. The MapReduce realization (mrkm.Partition) reuses it as
// the per-group mapper body.
func KMeansSharp(ds *geom.Dataset, k, batch int, r *rng.Rng) *geom.Matrix {
	if batch <= 0 {
		batch = 3 * int(math.Ceil(math.Log(float64(k))))
		if batch < 1 {
			batch = 1
		}
	}
	n := ds.N()
	centers := geom.NewMatrix(0, ds.Dim())
	centers.Cols = ds.Dim()
	cap := k * batch
	if cap > n {
		cap = n
	}

	// Iteration 1: `batch` uniform picks (distinct).
	first := r.SampleWithoutReplacement(n, min(batch, n))
	for _, i := range first {
		centers.AppendRow(ds.Point(i))
	}

	// Maintain w_i·d²(x_i, C) incrementally.
	d2 := make([]float64, n)
	var phi float64
	for i := 0; i < n; i++ {
		_, d := geom.Nearest(ds.Point(i), centers)
		d2[i] = ds.W(i) * d
		phi += d2[i]
	}

	for it := 1; it < k && centers.Rows < cap; it++ {
		if !(phi > 0) {
			break
		}
		from := centers.Rows
		for j := 0; j < batch && centers.Rows < cap; j++ {
			// Draw from the joint distribution; skip zero-mass picks
			// (already-covered points).
			idx := r.WeightedIndex(d2)
			if d2[idx] <= 0 {
				continue
			}
			centers.AppendRow(ds.Point(idx))
			d2[idx] = 0
		}
		if centers.Rows == from {
			break
		}
		phi = 0
		for i := 0; i < n; i++ {
			if d2[i] > 0 {
				w := ds.W(i)
				best := d2[i] / w
				p := ds.Point(i)
				for c := from; c < centers.Rows; c++ {
					if nd := geom.SqDistBound(p, centers.Row(c), best); nd < best {
						best = nd
					}
				}
				d2[i] = w * best
			}
			phi += d2[i]
		}
	}
	return centers
}

// groupWeights assigns each group point to its nearest group center and
// returns the per-center weight totals.
func groupWeights(ds *geom.Dataset, centers *geom.Matrix) []float64 {
	w := make([]float64, centers.Rows)
	for i := 0; i < ds.N(); i++ {
		idx, _ := geom.Nearest(ds.Point(i), centers)
		w[idx] += ds.W(i)
	}
	return w
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

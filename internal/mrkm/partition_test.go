package mrkm

import (
	"math"
	"testing"

	"kmeansll/internal/lloyd"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
	"kmeansll/internal/stream"
)

func TestPartitionMRMatchesInProcess(t *testing.T) {
	// Same seed ⇒ identical group assignment and per-group RNG streams ⇒
	// identical intermediate sets and final centers.
	ds := blobs(t, 5, 150, 5, 30, 1)
	cfg := stream.Config{K: 5, Seed: 7}
	inC, inStats := stream.Partition(ds, cfg)
	mrC, mrStats, counters := Partition(ds, cfg, Config{Mappers: 4})

	if inStats.Groups != mrStats.Groups {
		t.Fatalf("groups differ: %d vs %d", inStats.Groups, mrStats.Groups)
	}
	if inStats.Intermediate != mrStats.Intermediate {
		t.Fatalf("intermediate differs: %d vs %d", inStats.Intermediate, mrStats.Intermediate)
	}
	if math.Abs(inStats.SeedCost-mrStats.SeedCost) > 1e-9*(1+inStats.SeedCost) {
		t.Fatalf("seed cost differs: %v vs %v", inStats.SeedCost, mrStats.SeedCost)
	}
	for i := range inC.Data {
		if inC.Data[i] != mrC.Data[i] {
			t.Fatal("final centers differ between MR and in-process Partition")
		}
	}
	// The full intermediate set crossed the shuffle.
	if counters.ShufflePairs != int64(mrStats.Intermediate) {
		t.Fatalf("shuffle pairs %d != intermediate %d",
			counters.ShufflePairs, mrStats.Intermediate)
	}
}

func TestPartitionMRQuality(t *testing.T) {
	ds := blobs(t, 8, 120, 6, 50, 2)
	centers, stats, _ := Partition(ds, stream.Config{K: 8, Seed: 3}, Config{Mappers: 8})
	if centers.Rows != 8 {
		t.Fatalf("got %d centers", centers.Rows)
	}
	rc := seed.Random(ds, 8, rng.New(99))
	if randCost := lloyd.Cost(ds, rc, 0); stats.SeedCost*2 > randCost {
		t.Fatalf("MR Partition seed cost %v not ≪ random %v", stats.SeedCost, randCost)
	}
}

func TestPartitionMRInvariantToMappers(t *testing.T) {
	ds := blobs(t, 4, 100, 4, 25, 4)
	cfg := stream.Config{K: 4, Seed: 5}
	c1, s1, _ := Partition(ds, cfg, Config{Mappers: 1})
	c2, s2, _ := Partition(ds, cfg, Config{Mappers: 16})
	if s1.Intermediate != s2.Intermediate {
		t.Fatalf("intermediate differs across mappers: %d vs %d", s1.Intermediate, s2.Intermediate)
	}
	for i := range c1.Data {
		if c1.Data[i] != c2.Data[i] {
			t.Fatal("MR Partition depends on mapper count")
		}
	}
}

package mrkm

import (
	"math"
	"testing"

	"kmeansll/internal/core"
	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
)

func blobs(t testing.TB, k, m, dim int, sep float64, seedVal uint64) *geom.Dataset {
	t.Helper()
	r := rng.New(seedVal)
	truth := geom.NewMatrix(k, dim)
	for i := range truth.Data {
		truth.Data[i] = sep * r.NormFloat64()
	}
	x := geom.NewMatrix(k*m, dim)
	for c := 0; c < k; c++ {
		for i := 0; i < m; i++ {
			row := x.Row(c*m + i)
			for j := 0; j < dim; j++ {
				row[j] = truth.Row(c)[j] + r.NormFloat64()
			}
		}
	}
	return geom.NewDataset(x)
}

func TestInitMatchesInProcessCandidates(t *testing.T) {
	// Same seed + Bernoulli sampling with counter-based randomness ⇒ the MR
	// realization selects the same candidate set as core.Init.
	ds := blobs(t, 5, 100, 6, 25, 1)
	cfg := core.Config{K: 5, L: 10, Rounds: 5, Seed: 7}
	_, coreStats := core.Init(ds, cfg)
	_, mrStats := Init(ds, cfg, Config{Mappers: 4})
	if coreStats.Candidates != mrStats.Candidates {
		t.Fatalf("candidate counts differ: core %d vs mr %d",
			coreStats.Candidates, mrStats.Candidates)
	}
	if math.Abs(coreStats.Psi-mrStats.Psi) > 1e-6*(1+coreStats.Psi) {
		t.Fatalf("ψ differs: %v vs %v", coreStats.Psi, mrStats.Psi)
	}
	for i := range coreStats.PhiTrace {
		if math.Abs(coreStats.PhiTrace[i]-mrStats.PhiTrace[i]) > 1e-6*(1+coreStats.PhiTrace[i]) {
			t.Fatalf("φ trace differs at %d: %v vs %v", i,
				coreStats.PhiTrace[i], mrStats.PhiTrace[i])
		}
	}
}

func TestInitQuality(t *testing.T) {
	ds := blobs(t, 8, 150, 8, 50, 2)
	centers, stats := Init(ds, core.Config{K: 8, Seed: 3}, Config{Mappers: 8})
	if centers.Rows != 8 {
		t.Fatalf("got %d centers", centers.Rows)
	}
	rc := seed.Random(ds, 8, rng.New(99))
	randCost := lloyd.Cost(ds, rc, 0)
	if stats.SeedCost*2 > randCost {
		t.Fatalf("MR k-means|| seed cost %v not ≪ random %v", stats.SeedCost, randCost)
	}
}

func TestMRRoundAccounting(t *testing.T) {
	ds := blobs(t, 4, 100, 5, 20, 4)
	_, stats := Init(ds, core.Config{K: 4, L: 8, Rounds: 3, Seed: 5}, Config{Mappers: 4})
	// 1 (ψ) + 3×2 (sample + update per round) + 1 (weights) + 1 (cost) = 9.
	if stats.MRRounds != 9 {
		t.Fatalf("MR rounds = %d, want 9", stats.MRRounds)
	}
	if stats.Counters.InputRecords == 0 || stats.Counters.ShufflePairs == 0 {
		t.Fatalf("counters not populated: %+v", stats.Counters)
	}
}

func TestInitInvariantToMapperCount(t *testing.T) {
	ds := blobs(t, 5, 120, 6, 30, 6)
	cfg := core.Config{K: 5, L: 10, Rounds: 5, Seed: 8}
	c1, s1 := Init(ds, cfg, Config{Mappers: 1})
	c2, s2 := Init(ds, cfg, Config{Mappers: 16})
	if s1.Candidates != s2.Candidates {
		t.Fatalf("candidates differ: %d vs %d", s1.Candidates, s2.Candidates)
	}
	for i := range c1.Data {
		if math.Abs(c1.Data[i]-c2.Data[i]) > 1e-9 {
			t.Fatal("MR Init result depends on mapper count")
		}
	}
}

func TestLloydMatchesInProcess(t *testing.T) {
	ds := blobs(t, 4, 100, 5, 40, 9)
	init := seed.KMeansPP(ds, 4, rng.New(10), 0)
	mrRes, stats := Lloyd(ds, init, 30, Config{Mappers: 4})
	inRes := lloyd.Run(ds, init, lloyd.Config{MaxIter: 30})
	if math.Abs(mrRes.Cost-inRes.Cost) > 1e-6*(1+inRes.Cost) {
		t.Fatalf("MR Lloyd cost %v != in-process %v", mrRes.Cost, inRes.Cost)
	}
	if stats.MRRounds != mrRes.Iters {
		t.Fatalf("one MR job per iteration expected: %d jobs, %d iters",
			stats.MRRounds, mrRes.Iters)
	}
}

func TestLloydCostTraceMonotone(t *testing.T) {
	ds := blobs(t, 5, 80, 4, 15, 11)
	init := seed.Random(ds, 5, rng.New(12))
	res, _ := Lloyd(ds, init, 25, Config{Mappers: 3})
	for i := 1; i < len(res.CostTrace); i++ {
		if res.CostTrace[i] > res.CostTrace[i-1]*(1+1e-9) {
			t.Fatalf("MR Lloyd cost increased at %d: %v -> %v",
				i, res.CostTrace[i-1], res.CostTrace[i])
		}
	}
}

func TestLloydConvergesAndStops(t *testing.T) {
	ds := blobs(t, 3, 60, 4, 60, 13)
	init := seed.KMeansPP(ds, 3, rng.New(14), 0)
	res, stats := Lloyd(ds, init, 100, Config{})
	if !res.Converged {
		t.Fatal("MR Lloyd did not converge on easy data")
	}
	if stats.MRRounds >= 100 {
		t.Fatalf("MR Lloyd ran all %d iterations", stats.MRRounds)
	}
}

func TestWeightJobSumsToN(t *testing.T) {
	ds := blobs(t, 4, 50, 3, 20, 15)
	centers := seed.Random(ds, 6, rng.New(16))
	spans := MakeSpans(ds.N(), 4)
	var stats Stats
	w := weightJob(spans, ds, centers, Config{Mappers: 4}.engine(), &stats)
	var total float64
	for _, v := range w {
		total += v
	}
	if math.Abs(total-float64(ds.N())) > 1e-9 {
		t.Fatalf("weights sum to %v, want %d", total, ds.N())
	}
}

func TestMakeSpans(t *testing.T) {
	spans := MakeSpans(10, 3)
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	covered := 0
	for i, s := range spans {
		covered += s.Hi - s.Lo
		if i > 0 && spans[i-1].Hi != s.Lo {
			t.Fatalf("spans not contiguous: %+v", spans)
		}
	}
	if covered != 10 {
		t.Fatalf("spans cover %d of 10", covered)
	}
	if got := MakeSpans(2, 100); len(got) != 2 {
		t.Fatalf("mappers should clamp to n: %d", len(got))
	}
}

package mrkm

import (
	"kmeansll/internal/geom"
	"kmeansll/internal/mr"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
	"kmeansll/internal/stream"
)

// Partition runs the Ailon et al. baseline with the two-round parallel
// dataflow §4.2.1 describes: "in the first round, groups are assigned to m
// different machines that can be run in parallel to obtain the intermediate
// set and in the second round, k-means++ is run on this set sequentially."
// Round 1 is one MapReduce job whose mappers each run k-means# on their
// group; round 2 happens on the driver. The engine counters expose the
// shuffle volume — the full weighted intermediate set crosses the network,
// which is the structural cost Table 5 is about.
func Partition(ds *geom.Dataset, cfg stream.Config, cluster Config) (*geom.Matrix, stream.Stats, mr.Counters) {
	if cfg.K <= 0 {
		panic("mrkm: Partition K must be positive")
	}
	n := ds.N()
	if n == 0 {
		panic("mrkm: empty dataset")
	}
	m := cfg.M
	if m <= 0 {
		m = stream.DefaultM(n, cfg.K)
	}
	if m > n {
		m = n
	}

	// Group assignment: random permutation sliced into m groups, exactly as
	// the in-process implementation (same seed ⇒ same groups).
	root := rng.New(cfg.Seed)
	perm := root.Perm(n)
	type group struct {
		id  int
		idx []int
	}
	groups := make([]group, m)
	for g := 0; g < m; g++ {
		groups[g] = group{id: g, idx: perm[g*n/m : (g+1)*n/m]}
	}

	// Round 1: one mapper invocation per group ("m different machines").
	// Each mapper clusters its group with k-means#, weights the group
	// centers by the group's points, and emits the weighted centers.
	type weightedCenter struct {
		Row []float64
		W   float64
	}
	mapper := func(g group, emit func(int, weightedCenter)) {
		gr := rng.New(cfg.Seed).Split(uint64(g.id) + 1)
		sub := ds.Subset(g.idx)
		centers := stream.KMeansSharp(sub, cfg.K, cfg.BatchPerRound, gr)
		ws := make([]float64, centers.Rows)
		for j := 0; j < sub.N(); j++ {
			idx, _ := geom.Nearest(sub.Point(j), centers)
			ws[idx] += sub.W(j)
		}
		for i := 0; i < centers.Rows; i++ {
			if ws[i] <= 0 {
				continue
			}
			emit(0, weightedCenter{Row: append([]float64(nil), centers.Row(i)...), W: ws[i]})
		}
	}
	reducer := func(_ int, vs []weightedCenter, emit func([]weightedCenter)) {
		emit(vs)
	}
	out, counters := mr.Run(groups, mapper, nil, reducer, cluster.engine())

	union := &geom.Matrix{Cols: ds.Dim()}
	var weights []float64
	for _, batch := range out {
		for _, wc := range batch {
			union.AppendRow(wc.Row)
			weights = append(weights, wc.W)
		}
	}
	stats := stream.Stats{Groups: m, Intermediate: union.Rows}

	// Round 2: sequential weighted k-means++ on the driver.
	cds := &geom.Dataset{X: union, Weight: weights}
	final := seed.KMeansPP(cds, cfg.K, root.Split(0), 1)
	stats.SeedCost = geomCost(ds, final)
	return final, stats, counters
}

func geomCost(ds *geom.Dataset, centers *geom.Matrix) float64 {
	var total float64
	for i := 0; i < ds.N(); i++ {
		_, d := geom.Nearest(ds.Point(i), centers)
		total += ds.W(i) * d
	}
	return total
}

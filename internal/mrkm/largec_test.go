package mrkm

import (
	"math"
	"testing"

	"kmeansll/internal/lloyd"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
)

func TestCostLargeCMatchesBroadcast(t *testing.T) {
	ds := blobs(t, 4, 80, 5, 25, 1)
	centers := seed.KMeansPP(ds, 12, rng.New(2), 1)
	want := lloyd.Cost(ds, centers, 1)
	for _, parts := range []int{1, 2, 3, 12} {
		got, _ := CostLargeC(ds, centers, parts, Config{Mappers: 4})
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("centerParts=%d: cost %v, want %v", parts, got, want)
		}
	}
}

func TestCostLargeCShuffleBlowup(t *testing.T) {
	// The paper notes the tuple-based realization shuffles one pair per
	// (point, center-partition): n·parts total, vs O(mappers) for the
	// broadcast version.
	ds := blobs(t, 3, 100, 4, 20, 3)
	centers := seed.Random(ds, 9, rng.New(4))
	const parts = 3
	_, counters := CostLargeC(ds, centers, parts, Config{Mappers: 4})
	want := int64(ds.N() * parts)
	if counters.ShufflePairs != want {
		t.Fatalf("shuffle pairs = %d, want n·parts = %d", counters.ShufflePairs, want)
	}
	if counters.ReduceGroups != int64(ds.N()) {
		t.Fatalf("reduce groups = %d, want n = %d", counters.ReduceGroups, ds.N())
	}
}

func TestCostLargeCClampsParts(t *testing.T) {
	ds := blobs(t, 2, 30, 3, 15, 5)
	centers := seed.Random(ds, 4, rng.New(6))
	want := lloyd.Cost(ds, centers, 1)
	// parts > k and parts <= 0 both degrade gracefully.
	for _, parts := range []int{0, -3, 100} {
		got, _ := CostLargeC(ds, centers, parts, Config{Mappers: 2})
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("parts=%d: cost %v, want %v", parts, got, want)
		}
	}
}

func TestCostLargeCEmpty(t *testing.T) {
	ds := blobs(t, 1, 5, 2, 1, 7)
	centers := seed.Random(ds, 2, rng.New(8))
	if got, _ := CostLargeC(ds, centers, 2, Config{}); got < 0 {
		t.Fatalf("negative cost %v", got)
	}
}

package mrkm

import (
	"math"
	"testing"

	"kmeansll/internal/core"
	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
)

// blobs32 narrows a blobs dataset to float32 and re-widens, so the float64
// and float32 realizations see exactly the same values.
func blobs32(t testing.TB, k, m, dim int, sep float64, seedVal uint64) (*geom.Dataset, *geom.Dataset32) {
	t.Helper()
	ds32 := geom.ToDataset32(blobs(t, k, m, dim, sep, seedVal))
	return ds32.ToDataset(), ds32
}

// TestInit32MatchesInit compares the float32 MR realization against the
// float64 one on float32-representable data: same seed schedule, tolerance
// agreement on ψ and the seed cost per the float32 contract.
func TestInit32MatchesInit(t *testing.T) {
	ds64, ds32 := blobs32(t, 5, 120, 6, 25, 11)
	cfg := core.Config{K: 5, L: 10, Rounds: 5, Seed: 7}
	_, s64 := Init(ds64, cfg, Config{Mappers: 4})
	c32, s32 := Init32(ds32, cfg, Config{Mappers: 4})
	if c32.Rows != 5 {
		t.Fatalf("Init32 returned %d centers", c32.Rows)
	}
	if math.Abs(s64.Psi-s32.Psi) > 1e-5*(1+s64.Psi) {
		t.Fatalf("ψ differs: f64 %v vs f32 %v", s64.Psi, s32.Psi)
	}
	if math.Abs(s64.SeedCost-s32.SeedCost) > 1e-4*(1+s64.SeedCost) {
		t.Fatalf("seed cost differs: f64 %v vs f32 %v", s64.SeedCost, s32.SeedCost)
	}
	if s32.MRRounds != s64.MRRounds {
		t.Fatalf("MR round counts differ: f64 %d vs f32 %d", s64.MRRounds, s32.MRRounds)
	}
}

// TestLloyd32MatchesLloyd runs the float32 MR Lloyd against the float64 one
// from the same float32-representable start and asserts the tolerance
// contract on cost and assignments.
func TestLloyd32MatchesLloyd(t *testing.T) {
	ds64, ds32 := blobs32(t, 6, 150, 8, 10, 13)
	init, _ := Init(ds64, core.Config{K: 6, Seed: 3}, Config{Mappers: 4})
	// Narrow the start so both precisions refine from identical values.
	init = geom.ToMatrix32(init).ToMatrix()
	r64, _ := Lloyd(ds64, init, 15, Config{Mappers: 4})
	r32, _ := Lloyd32(ds32, init, 15, Config{Mappers: 4})
	if rel := math.Abs(r32.Cost-r64.Cost) / r64.Cost; rel > 1e-5 {
		t.Fatalf("cost differs: f64 %v vs f32 %v (rel %v)", r64.Cost, r32.Cost, rel)
	}
	same := 0
	for i := range r64.Assign {
		if r64.Assign[i] == r32.Assign[i] {
			same++
		}
	}
	if frac := float64(same) / float64(len(r64.Assign)); frac < 0.999 {
		t.Fatalf("only %.4f assignment agreement", frac)
	}
}

// TestLloyd32AssignMatchesAssign32 pins that the final span-job assignment of
// Lloyd32 is the same per-point answer as the in-process float32 assignment
// pass (per-point values are span- and chunk-independent by the kernel
// contract; only reduction order differs, which assignments don't see).
func TestLloyd32AssignMatchesAssign32(t *testing.T) {
	ds64, ds32 := blobs32(t, 4, 100, 5, 20, 17)
	init, _ := Init(ds64, core.Config{K: 4, Seed: 9}, Config{Mappers: 3})
	init = geom.ToMatrix32(init).ToMatrix()
	res, _ := Lloyd32(ds32, init, 10, Config{Mappers: 3})
	snap := geom.ToMatrix32(res.Centers)
	want, _ := lloyd.Assign32(ds32, snap, 2)
	for i := range want {
		if want[i] != res.Assign[i] {
			t.Fatalf("assignment %d differs: Lloyd32 %d vs Assign32 %d", i, res.Assign[i], want[i])
		}
	}
}

// TestInit32InvariantToMapperCountAssignments checks the span bodies give
// span-structure-independent per-point results: two mapper counts must yield
// bit-identical candidate D² caches after the first update pass.
func TestUpdateSpan32SpanInvariance(t *testing.T) {
	_, ds32 := blobs32(t, 4, 90, 7, 15, 19)
	n := ds32.N()
	pNorms := geom.RowSqNorms32(ds32.X, nil)
	centers := &geom.Matrix32{Cols: ds32.Dim()}
	for _, i := range []int{0, 57, 200} {
		centers.AppendRow(ds32.Point(i))
	}
	run := func(spans []Span) []float64 {
		d2 := make([]float64, n)
		for i := range d2 {
			d2[i] = math.Inf(1)
		}
		for _, s := range spans {
			UpdateSpan32(ds32, pNorms, d2, s.Lo, s.Hi, centers, 0)
		}
		return d2
	}
	a := run(MakeSpans(n, 1))
	b := run(MakeSpans(n, 7))
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("d2[%d] differs across span structures: %v vs %v", i, a[i], b[i])
		}
	}
}

package mrkm

import (
	"math"

	"kmeansll/internal/core"
	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
	"kmeansll/internal/mr"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
)

// This file is the float32 realization of the MapReduce dataflow: the same
// jobs as mrkm.go with every distance-heavy mapper body running on the
// blocked float32 engine (or its scalar norm-expansion fallback, chosen by
// geom.UseBlocked exactly as core.Init32 chooses). The span bodies below are
// shared verbatim with the networked workers in internal/distkm — a worker
// RPC over its shard runs the same function the in-process mapper runs over
// the matching span — so for equal spans, seed and kernel tier the
// distributed float32 fit is bit-identical to Init32+Lloyd32 here. All
// cross-point reductions (φ partials, center sums, Step 7 weights) stay
// float64 and are folded in fixed span order.

// UpdateSpan32 folds centers[from:] into the weighted D² cache of points
// [lo, hi) and returns the span's φ partial — the float32 counterpart of
// UpdateSpan. pNorms are the cached squared norms of all of ds's rows (the
// scalar path's norm-expansion needs them); the blocked engine is used when
// the new-center count clears the geom.UseBlocked crossover, mirroring
// core.Init32's round update so single-process and distributed runs make the
// same kernel choice.
func UpdateSpan32(ds *geom.Dataset32, pNorms []float32, d2 []float64, lo, hi int, centers *geom.Matrix32, from int) float64 {
	newView := centers.RowRange(from, centers.Rows)
	kNew := newView.Rows
	var part float64
	if kNew == 0 {
		for i := lo; i < hi; i++ {
			part += d2[i]
		}
		return part
	}
	cNorms := geom.RowSqNorms32(&newView, nil)
	if geom.UseBlocked(kNew, ds.Dim()) {
		sc := geom.GetScratch32()
		geom.VisitNearest32(ds.X, &newView, cNorms, lo, hi, sc, false, func(i int, _ int32, dNew float64) {
			if nd := ds.W(i) * dNew; nd < d2[i] {
				d2[i] = nd
			}
			part += d2[i]
		})
		sc.Release()
		return part
	}
	for i := lo; i < hi; i++ {
		if d2[i] > 0 {
			w := ds.W(i)
			p := ds.Point(i)
			best := d2[i]
			if !math.IsInf(best, 1) {
				best /= w
			}
			for c := 0; c < kNew; c++ {
				if nd := geom.SqDistNorm32(p, newView.Row(c), pNorms[i], cNorms[c]); nd < best {
					best = nd
				}
			}
			d2[i] = w * best
		}
		part += d2[i]
	}
	return part
}

// WeightSpan32 is the Step 7 mapper body over float32 points: the total input
// weight of the span's points served by each candidate, accumulated in point
// order. Shared with the distkm worker's float32 Weights RPC.
func WeightSpan32(ds *geom.Dataset32, pNorms []float32, lo, hi int, centers *geom.Matrix32) []float64 {
	k := centers.Rows
	w := make([]float64, k)
	cNorms := geom.RowSqNorms32(centers, nil)
	if geom.UseBlocked(k, centers.Cols) {
		sc := geom.GetScratch32()
		geom.VisitNearest32(ds.X, centers, cNorms, lo, hi, sc, true, func(i int, idx int32, _ float64) {
			w[idx] += ds.W(i)
		})
		sc.Release()
		return w
	}
	for i := lo; i < hi; i++ {
		p := ds.Point(i)
		best, bestIdx := math.Inf(1), 0
		for c := 0; c < k; c++ {
			if d := geom.SqDistNorm32(p, centers.Row(c), pNorms[i], cNorms[c]); d < best {
				best, bestIdx = d, c
			}
		}
		w[bestIdx] += ds.W(i)
	}
	return w
}

// LloydSpan32 is one Lloyd iteration's mapper body over float32 points:
// per-center Σw·x ⧺ Σw (a k×(d+1) float64 matrix, widened accumulation) plus
// the span's assignment-cost partial. Shared with the distkm worker's
// float32 LloydStep RPC.
func LloydSpan32(ds *geom.Dataset32, pNorms []float32, lo, hi int, centers *geom.Matrix32) (*geom.Matrix, float64) {
	k, d := centers.Rows, centers.Cols
	sums := geom.NewMatrix(k, d+1)
	var phi float64
	cNorms := geom.RowSqNorms32(centers, nil)
	visit := func(i int, idx int32, dist float64) {
		w := ds.W(i)
		row := sums.Row(int(idx))
		geom.AddScaled32(row[:d], w, ds.Point(i))
		row[d] += w
		phi += w * dist
	}
	if geom.UseBlocked(k, d) {
		sc := geom.GetScratch32()
		geom.VisitNearest32(ds.X, centers, cNorms, lo, hi, sc, true, visit)
		sc.Release()
		return sums, phi
	}
	for i := lo; i < hi; i++ {
		p := ds.Point(i)
		best, bestIdx := math.Inf(1), 0
		for c := 0; c < k; c++ {
			if dd := geom.SqDistNorm32(p, centers.Row(c), pNorms[i], cNorms[c]); dd < best {
				best, bestIdx = dd, c
			}
		}
		visit(i, int32(bestIdx), best)
	}
	return sums, phi
}

// CostSpan32 is the φ partial of points [lo, hi) against an arbitrary center
// set — the float32 evaluation-pass mapper body, shared with the distkm
// worker's float32 Cost RPC.
func CostSpan32(ds *geom.Dataset32, pNorms []float32, lo, hi int, centers *geom.Matrix32) float64 {
	k := centers.Rows
	var part float64
	cNorms := geom.RowSqNorms32(centers, nil)
	if geom.UseBlocked(k, centers.Cols) {
		sc := geom.GetScratch32()
		geom.VisitNearest32(ds.X, centers, cNorms, lo, hi, sc, false, func(i int, _ int32, dist float64) {
			part += ds.W(i) * dist
		})
		sc.Release()
		return part
	}
	for i := lo; i < hi; i++ {
		p := ds.Point(i)
		best := math.Inf(1)
		for c := 0; c < k; c++ {
			if d := geom.SqDistNorm32(p, centers.Row(c), pNorms[i], cNorms[c]); d < best {
				best = d
			}
		}
		part += ds.W(i) * best
	}
	return part
}

// AssignSpan32 writes the nearest-center index of every point in [lo, hi)
// into assign (indexed globally, like d2 in UpdateSpan32) and returns the
// span's cost partial — the float32 final-assignment mapper body, shared
// with the distkm worker's float32 Assign RPC (which passes its local slice
// with lo = 0).
func AssignSpan32(ds *geom.Dataset32, pNorms []float32, lo, hi int, centers *geom.Matrix32, assign []int32) float64 {
	k := centers.Rows
	var part float64
	cNorms := geom.RowSqNorms32(centers, nil)
	if geom.UseBlocked(k, centers.Cols) {
		sc := geom.GetScratch32()
		geom.VisitNearest32(ds.X, centers, cNorms, lo, hi, sc, true, func(i int, idx int32, dist float64) {
			assign[i] = idx
			part += ds.W(i) * dist
		})
		sc.Release()
		return part
	}
	for i := lo; i < hi; i++ {
		p := ds.Point(i)
		best, bestIdx := math.Inf(1), 0
		for c := 0; c < k; c++ {
			if d := geom.SqDistNorm32(p, centers.Row(c), pNorms[i], cNorms[c]); d < best {
				best, bestIdx = d, c
			}
		}
		assign[i] = int32(bestIdx)
		part += ds.W(i) * best
	}
	return part
}

// Init32 runs Algorithm 2 over float32 points with the MapReduce dataflow —
// the float32 counterpart of Init. The driver-side structure (first-center
// draw, Bernoulli sampling on the float64 D² cache, Step 8 reclustering the
// widened candidates in float64) is Init's code; only the distance-heavy
// mapper bodies run in float32. For equal spans and seed it is bit-identical
// to a distkm float32 fit, which runs the same span bodies on its workers.
func Init32(ds *geom.Dataset32, cfg core.Config, cluster Config) (*geom.Matrix, Stats) {
	if cfg.K <= 0 {
		panic("mrkm: Config.K must be positive")
	}
	n := ds.N()
	if n == 0 {
		panic("mrkm: empty dataset")
	}
	spans := MakeSpans(n, cluster.Mappers)
	engine := cluster.engine()
	r := rng.New(cfg.Seed)
	stats := Stats{}
	ell, rounds := Defaults(cfg)

	// Step 1: first center, chosen by the driver.
	var first int
	if ds.Weight == nil {
		first = r.Intn(n)
	} else {
		first = r.WeightedIndex(ds.Weight)
	}
	centers := &geom.Matrix32{Cols: ds.Dim()}
	centers.AppendRow(ds.Point(first))

	pNorms := geom.RowSqNorms32(ds.X, nil)
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = math.Inf(1)
	}

	updateAndCost := func(from int) float64 {
		mapper := func(s Span, emit func(int, float64)) {
			emit(0, UpdateSpan32(ds, pNorms, d2, s.Lo, s.Hi, centers, from))
		}
		reducer := func(_ int, vs []float64, emit func(float64)) { emit(sum(vs)) }
		out, counters := mr.Run(spans, mapper, nil, reducer, engine)
		stats.MRRounds++
		stats.Counters.Add(counters)
		if len(out) == 0 {
			return 0
		}
		return out[0]
	}

	// Step 2: ψ (pure cost pass).
	phi := updateAndCost(0)
	stats.Psi = phi
	stats.PhiTrace = append(stats.PhiTrace, phi)

	// Steps 3–6: sampling reads only the float64 D² cache, so the job is
	// shared with the float64 realization verbatim.
	for round := 0; round < rounds && phi > 0; round++ {
		from := centers.Rows
		cand := sampleOnly(spans, d2, phi, ell, cfg.Seed, round, engine, &stats)
		for _, i := range cand {
			centers.AppendRow(ds.Point(i))
		}
		phi = updateAndCost(from)
		stats.PhiTrace = append(stats.PhiTrace, phi)
	}
	stats.Candidates = centers.Rows

	// Step 7: weighting job; per-span weight vectors are reduced in span
	// order, matching the coordinator's fixed shard-order reduction.
	weights := weightJob32(spans, ds, pNorms, centers, engine, &stats)

	// Step 8: sequential reclustering on the driver, in float64 on the
	// widened (exact) candidate rows — the same code and arithmetic as Init.
	cds := WeightedCandidates(centers.ToMatrix(), weights)
	final := seed.KMeansPP(cds, cfg.K, r, 1)

	stats.SeedCost = costJob32(spans, ds, pNorms, geom.ToMatrix32(final), engine, &stats)
	return final, stats
}

// weightJob32 is Step 7: one WeightSpan32 per span, summed per candidate in
// span order.
func weightJob32(spans []Span, ds *geom.Dataset32, pNorms []float32, centers *geom.Matrix32, engine mr.Config, stats *Stats) []float64 {
	mapper := func(s Span, emit func(int, []float64)) {
		emit(0, WeightSpan32(ds, pNorms, s.Lo, s.Hi, centers))
	}
	k := centers.Rows
	reducer := func(_ int, vs [][]float64, emit func([]float64)) {
		out := make([]float64, k)
		for _, v := range vs {
			for c := range out {
				out[c] += v[c]
			}
		}
		emit(out)
	}
	out, counters := mr.Run(spans, mapper, nil, reducer, engine)
	stats.MRRounds++
	stats.Counters.Add(counters)
	if len(out) == 0 {
		return make([]float64, k)
	}
	return out[0]
}

// costJob32 computes φ_X(C) over float32 points as one MR job.
func costJob32(spans []Span, ds *geom.Dataset32, pNorms []float32, centers *geom.Matrix32, engine mr.Config, stats *Stats) float64 {
	mapper := func(s Span, emit func(int, float64)) {
		emit(0, CostSpan32(ds, pNorms, s.Lo, s.Hi, centers))
	}
	reducer := func(_ int, vs []float64, emit func(float64)) { emit(sum(vs)) }
	out, counters := mr.Run(spans, mapper, nil, reducer, engine)
	stats.MRRounds++
	stats.Counters.Add(counters)
	if len(out) == 0 {
		return 0
	}
	return out[0]
}

// Lloyd32 runs Lloyd's iteration over float32 points where each iteration is
// one MapReduce job — the float32 counterpart of Lloyd. Centers are mastered
// in float64 and narrowed to a float32 snapshot the mappers scan, exactly
// like lloyd.Run32; the per-center Σw·x ⧺ Σw reduction and the center update
// itself stay float64, folded in span order. Empty clusters keep their
// previous position, as in Lloyd. The final assignment and cost come from a
// dedicated span job so they reduce in the same fixed order a distkm
// coordinator uses.
func Lloyd32(ds *geom.Dataset32, init *geom.Matrix, maxIter int, cluster Config) (lloyd.Result, Stats) {
	if maxIter <= 0 {
		maxIter = 20 // match Lloyd: the paper bounds parallel Lloyd at 20
	}
	n := ds.N()
	spans := MakeSpans(n, cluster.Mappers)
	engine := cluster.engine()
	centers := init.Clone()
	k, d := centers.Rows, centers.Cols
	pNorms := geom.RowSqNorms32(ds.X, nil)
	snap := geom.NewMatrix32(k, d)
	narrow := func() {
		for c := 0; c < k; c++ {
			geom.ConvertRow32(snap.Row(c), centers.Row(c))
		}
	}
	stats := Stats{}
	res := lloyd.Result{Centers: centers}

	type part struct {
		Sums []float64 // k rows of Σw·x ⧺ Σw, k×(d+1), span-local
		Phi  float64
	}
	for it := 0; it < maxIter; it++ {
		narrow()
		mapper := func(s Span, emit func(int, part)) {
			sums, phi := LloydSpan32(ds, pNorms, s.Lo, s.Hi, snap)
			emit(0, part{Sums: sums.Data, Phi: phi})
		}
		reducer := func(_ int, vs []part, emit func(part)) {
			total := make([]float64, k*(d+1))
			var phi float64
			for _, v := range vs {
				for j := range total {
					total[j] += v.Sums[j]
				}
				phi += v.Phi
			}
			emit(part{Sums: total, Phi: phi})
		}
		out, counters := mr.Run(spans, mapper, nil, reducer, engine)
		stats.MRRounds++
		stats.Counters.Add(counters)
		if len(out) == 0 {
			break
		}
		total, phi := out[0].Sums, out[0].Phi

		maxMove := 0.0
		for c := 0; c < k; c++ {
			row := total[c*(d+1) : (c+1)*(d+1)]
			if row[d] <= 0 {
				continue // empty cluster keeps its previous position
			}
			cRow := centers.Row(c)
			var move float64
			for j := 0; j < d; j++ {
				v := row[j] / row[d]
				diff := v - cRow[j]
				move += diff * diff
				cRow[j] = v
			}
			if move > maxMove {
				maxMove = move
			}
		}
		res.Iters = it + 1
		res.Cost = phi
		res.CostTrace = append(res.CostTrace, phi)
		if maxMove == 0 {
			res.Converged = true
			break
		}
	}

	// res.Cost above is w.r.t. the previous centers; report the final
	// assignment and cost against the final centers, reduced in span order.
	narrow()
	assign := make([]int32, n)
	mapper := func(s Span, emit func(int, float64)) {
		emit(0, AssignSpan32(ds, pNorms, s.Lo, s.Hi, snap, assign))
	}
	reducer := func(_ int, vs []float64, emit func(float64)) { emit(sum(vs)) }
	out, counters := mr.Run(spans, mapper, nil, reducer, engine)
	stats.MRRounds++
	stats.Counters.Add(counters)
	res.Assign = assign
	if len(out) > 0 {
		res.Cost = out[0]
	}
	stats.SeedCost = res.Cost
	return res, stats
}

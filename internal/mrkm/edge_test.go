package mrkm

import (
	"math"
	"testing"

	"kmeansll/internal/core"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
	"kmeansll/internal/stream"
)

// Fewer points than mappers: spans clamp to one point each and the result
// still matches a single-mapper run exactly.
func TestInitFewerPointsThanMappers(t *testing.T) {
	ds := blobs(t, 3, 2, 4, 40, 31) // 6 points
	cfg := core.Config{K: 3, L: 6, Rounds: 2, Seed: 5}
	c1, s1 := Init(ds, cfg, Config{Mappers: 1})
	c64, s64 := Init(ds, cfg, Config{Mappers: 64})
	if s1.Candidates != s64.Candidates {
		t.Fatalf("candidates differ: %d vs %d", s1.Candidates, s64.Candidates)
	}
	for i := range c1.Data {
		if math.Abs(c1.Data[i]-c64.Data[i]) > 1e-9 {
			t.Fatal("Init result depends on mapper count when mappers > n")
		}
	}
}

// A single reduce task must not change any result: the shuffle bucketing is
// an execution detail, not part of the answer.
func TestInitSingleReducer(t *testing.T) {
	ds := blobs(t, 5, 80, 5, 25, 33)
	cfg := core.Config{K: 5, L: 10, Rounds: 4, Seed: 9}
	cDefault, sDefault := Init(ds, cfg, Config{Mappers: 4})
	cSingle, sSingle := Init(ds, cfg, Config{Mappers: 4, Reducers: 1})
	if sDefault.Candidates != sSingle.Candidates {
		t.Fatalf("candidates differ: %d vs %d", sDefault.Candidates, sSingle.Candidates)
	}
	for i := range cDefault.Data {
		if math.Float64bits(cDefault.Data[i]) != math.Float64bits(cSingle.Data[i]) {
			t.Fatal("Init result depends on reducer count")
		}
	}
}

func TestLloydSingleReducer(t *testing.T) {
	ds := blobs(t, 4, 60, 4, 30, 35)
	init := seed.KMeansPP(ds, 4, rng.New(36), 0)
	rMany, _ := Lloyd(ds, init, 15, Config{Mappers: 4, Reducers: 5})
	rOne, _ := Lloyd(ds, init, 15, Config{Mappers: 4, Reducers: 1})
	if rMany.Iters != rOne.Iters {
		t.Fatalf("iterations differ: %d vs %d", rMany.Iters, rOne.Iters)
	}
	for i := range rMany.Centers.Data {
		if math.Float64bits(rMany.Centers.Data[i]) != math.Float64bits(rOne.Centers.Data[i]) {
			t.Fatal("Lloyd centers depend on reducer count")
		}
	}
}

// Lloyd with a degenerate single-point-per-mapper split (n == mappers).
func TestLloydOnePointPerMapper(t *testing.T) {
	ds := blobs(t, 2, 3, 3, 50, 37) // 6 points
	init := seed.Random(ds, 2, rng.New(38))
	res, _ := Lloyd(ds, init, 10, Config{Mappers: 6})
	if len(res.Assign) != 6 {
		t.Fatalf("assignments for %d points, want 6", len(res.Assign))
	}
	if res.Cost < 0 {
		t.Fatalf("negative cost %v", res.Cost)
	}
}

// Partition with more groups than the mapper count and with a single
// reducer: group results must be identical — the MR layout only changes
// where the per-group work runs.
func TestPartitionSingleReducerAndManyGroups(t *testing.T) {
	ds := blobs(t, 4, 60, 4, 20, 39)
	cfg := stream.Config{K: 4, M: 12, Seed: 7}
	c1, s1, _ := Partition(ds, cfg, Config{Mappers: 3, Reducers: 1})
	c2, s2, _ := Partition(ds, cfg, Config{Mappers: 12, Reducers: 4})
	if s1.Intermediate != s2.Intermediate || s1.Groups != s2.Groups {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	for i := range c1.Data {
		if math.Float64bits(c1.Data[i]) != math.Float64bits(c2.Data[i]) {
			t.Fatal("Partition result depends on the MR layout")
		}
	}
}

// Partition where m exceeds n: groups clamp to n, some of size one.
func TestPartitionMoreGroupsThanPoints(t *testing.T) {
	ds := blobs(t, 2, 3, 3, 30, 41) // 6 points
	centers, stats, counters := Partition(ds, stream.Config{K: 2, M: 100, Seed: 3}, Config{})
	if centers.Rows != 2 {
		t.Fatalf("got %d centers", centers.Rows)
	}
	if stats.Groups != 6 {
		t.Fatalf("groups = %d, want clamp to n=6", stats.Groups)
	}
	if counters.InputRecords != 6 {
		t.Fatalf("one input record per group expected, got %d", counters.InputRecords)
	}
}

package mrkm

import (
	"kmeansll/internal/geom"
	"kmeansll/internal/mr"
)

// CostLargeC computes φ_X(C) without assuming the center set fits in mapper
// memory — the second realization sketched in §3.5 of the paper: "Each
// mapper holding X' ⊆ X and C' ⊆ C can output the tuple ⟨x; argmin_{c∈C'}
// d(x, c)⟩, where x ∈ X' is the key. From this, the reducer can easily
// compute d(x, C) and hence φ_X(C)."
//
// The input records are the cross product of point partitions and center
// partitions; every mapper sees one (X', C') block and emits one per-point
// partial minimum, keyed by point. The reducer takes the min over the
// centerParts partials for each point and emits its weighted contribution;
// the driver sums. The returned counters expose the shuffle blow-up the
// paper calls out as an open problem: n·centerParts pairs cross the shuffle,
// versus `mappers` pairs in the broadcast-C version.
func CostLargeC(ds *geom.Dataset, centers *geom.Matrix, centerParts int, cluster Config) (float64, mr.Counters) {
	n := ds.N()
	if n == 0 || centers.Rows == 0 {
		return 0, mr.Counters{}
	}
	if centerParts < 1 {
		centerParts = 1
	}
	if centerParts > centers.Rows {
		centerParts = centers.Rows
	}
	pointSpans := MakeSpans(n, cluster.Mappers)

	// One input record per (point-span, center-span) block.
	type block struct {
		x Span
		c Span
	}
	var blocks []block
	for _, xs := range pointSpans {
		for p := 0; p < centerParts; p++ {
			blocks = append(blocks, block{
				x: xs,
				c: Span{Lo: p * centers.Rows / centerParts, Hi: (p + 1) * centers.Rows / centerParts},
			})
		}
	}

	mapper := func(b block, emit func(int32, float64)) {
		for i := b.x.Lo; i < b.x.Hi; i++ {
			p := ds.Point(i)
			best := geom.SqDist(p, centers.Row(b.c.Lo))
			for c := b.c.Lo + 1; c < b.c.Hi; c++ {
				if d := geom.SqDistBound(p, centers.Row(c), best); d < best {
					best = d
				}
			}
			emit(int32(i), best)
		}
	}
	// A min-combiner would defeat the purpose of measuring the blow-up;
	// Hadoop could use one only when X' blocks for the same x land in the
	// same mapper, which they do not here (one block = one (X', C') pair).
	reducer := func(i int32, vs []float64, emit func(float64)) {
		best := vs[0]
		for _, v := range vs[1:] {
			if v < best {
				best = v
			}
		}
		emit(ds.W(int(i)) * best)
	}
	out, counters := mr.Run(blocks, mapper, nil, reducer, cluster.engine())
	var phi float64
	for _, v := range out {
		phi += v
	}
	return phi, counters
}

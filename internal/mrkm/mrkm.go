// Package mrkm realizes k-means|| and Lloyd's iteration as MapReduce jobs on
// the engine in internal/mr, following §3.5 of the paper:
//
//   - the (small) current center set C is broadcast to every mapper;
//   - one sampling round of Algorithm 2 is ONE map pass: each mapper updates
//     its points' cached distances against the newly added centers, computes
//     its partition's contribution to φ_X(C), and independently samples
//     candidates; the reducer sums φ and collects the candidates;
//   - Step 7 (weighting) is one map pass emitting (center, weight) pairs
//     through a summing combiner;
//   - Step 8 (reclustering) runs on "a single machine" — sequential weighted
//     k-means++ — because the candidate set is tiny;
//   - one Lloyd iteration is one map pass emitting (center, Σw·x ⧺ Σw)
//     through a vector-summing combiner.
//
// The per-point distance cache lives with the input partition, mirroring the
// data-local state a Hadoop implementation would persist alongside its split
// between rounds (or recompute; the pass count is identical either way).
package mrkm

import (
	"math"

	"kmeansll/internal/core"
	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
	"kmeansll/internal/mr"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
)

// Span is one input partition: points [Lo, Hi) of the dataset. The
// networked realization (internal/distkm) shards with the same function, so
// its per-shard partial sums line up with the mapper partials here term for
// term — the foundation of the bit-identical-parity guarantee.
type Span struct{ Lo, Hi int }

// MakeSpans splits n points into min(mappers, n) contiguous spans
// (mappers < 1 means all CPUs).
func MakeSpans(n, mappers int) []Span {
	m := geom.Workers(mappers)
	if m > n {
		m = n
	}
	if m < 1 {
		m = 1
	}
	out := make([]Span, m)
	for i := 0; i < m; i++ {
		out[i] = Span{Lo: i * n / m, Hi: (i + 1) * n / m}
	}
	return out
}

// Defaults resolves the oversampling factor ℓ and round count of Algorithm 2
// exactly as Init does: ℓ = 2k when unset, rounds = max(5, ⌈k/ℓ⌉) when
// unset. Shared with distkm so both drivers run identical schedules.
func Defaults(cfg core.Config) (ell float64, rounds int) {
	ell = cfg.L
	if ell <= 0 {
		ell = 2 * float64(cfg.K)
	}
	rounds = cfg.Rounds
	if rounds <= 0 {
		rounds = 5
		if need := int(math.Ceil(float64(cfg.K) / ell)); need > rounds {
			rounds = need
		}
	}
	return ell, rounds
}

// UpdateSpan folds centers[from:] into the weighted D² cache of points
// [lo, hi) and returns the span's φ partial — the cache-update mapper body
// of Algorithm 2's per-round pass. Both the in-process mapper below and the
// distkm worker run this exact loop, which keeps their partials bit-equal.
func UpdateSpan(ds *geom.Dataset, d2 []float64, lo, hi int, centers *geom.Matrix, from int) float64 {
	var part float64
	for i := lo; i < hi; i++ {
		if d2[i] > 0 {
			w := ds.W(i)
			p := ds.Point(i)
			best := d2[i]
			if !math.IsInf(best, 1) {
				best /= w
			}
			for c := from; c < centers.Rows; c++ {
				if nd := geom.SqDistBound(p, centers.Row(c), best); nd < best {
					best = nd
				}
			}
			d2[i] = w * best
		}
		part += d2[i]
	}
	return part
}

// Stats describes an MR-realized run.
type Stats struct {
	// MRRounds is the number of MapReduce jobs executed (each job is one
	// full pass over the input).
	MRRounds int
	// Candidates is |C| before reclustering.
	Candidates int
	// SeedCost is φ_X of the k centers produced by Init.
	SeedCost float64
	// Counters aggregates engine counters over all jobs.
	Counters mr.Counters
	// Psi is φ after the first center (Init only).
	Psi float64
	// PhiTrace is φ after each sampling round (Init only).
	PhiTrace []float64
}

// Config parameterizes the simulated cluster.
type Config struct {
	// Mappers is the number of map tasks (the paper's "machines"); <1 = all
	// CPUs.
	Mappers int
	// Reducers is the number of reduce tasks; <1 = Mappers.
	Reducers int
}

func (c Config) engine() mr.Config { return mr.Config{Mappers: c.Mappers, Reducers: c.Reducers} }

// Init runs Algorithm 2 with the MapReduce dataflow and returns k centers.
// The algorithmic parameters are taken from cfg (K, L, Rounds, Seed); the
// sampling is Bernoulli with the same counter-based per-point randomness as
// core.Init, so for equal parameters the candidate sets agree with the
// in-process implementation.
func Init(ds *geom.Dataset, cfg core.Config, cluster Config) (*geom.Matrix, Stats) {
	if cfg.K <= 0 {
		panic("mrkm: Config.K must be positive")
	}
	n := ds.N()
	if n == 0 {
		panic("mrkm: empty dataset")
	}
	spans := MakeSpans(n, cluster.Mappers)
	engine := cluster.engine()
	r := rng.New(cfg.Seed)
	stats := Stats{}
	ell, rounds := Defaults(cfg)

	// Step 1: first center, chosen by the driver.
	var first int
	if ds.Weight == nil {
		first = r.Intn(n)
	} else {
		first = r.WeightedIndex(ds.Weight)
	}
	centers := geom.NewMatrix(0, ds.Dim())
	centers.Cols = ds.Dim()
	centers.AppendRow(ds.Point(first))

	// d2 is the data-local distance cache (one entry per point, owned by the
	// mapper that owns the point's span).
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = math.Inf(1)
	}

	// Job: update caches against centers[from:] and return the new φ. One
	// full pass over the data, like the cost computation described in §3.5
	// ("each mapper ... can compute φ_{X'}(C) and the reducer can simply add
	// these values").
	updateAndCost := func(from int) float64 {
		mapper := func(s Span, emit func(int, float64)) {
			emit(0, UpdateSpan(ds, d2, s.Lo, s.Hi, centers, from))
		}
		reducer := func(_ int, vs []float64, emit func(float64)) { emit(sum(vs)) }
		out, counters := mr.Run(spans, mapper, nil, reducer, engine)
		stats.MRRounds++
		stats.Counters.Add(counters)
		if len(out) == 0 {
			return 0
		}
		return out[0]
	}

	// Step 2: ψ (pure cost pass).
	phi := updateAndCost(0)
	stats.Psi = phi
	stats.PhiTrace = append(stats.PhiTrace, phi)

	// Steps 3–6: each round is a sampling job (reads the cache, needs the φ
	// the previous job produced) followed by an update+cost job against the
	// newly added centers — two full passes per round, which is exactly what
	// a Hadoop driver threading φ between jobs does.
	for round := 0; round < rounds && phi > 0; round++ {
		from := centers.Rows
		cand := sampleOnly(spans, d2, phi, ell, cfg.Seed, round, engine, &stats)
		for _, i := range cand {
			centers.AppendRow(ds.Point(i))
		}
		phi = updateAndCost(from)
		stats.PhiTrace = append(stats.PhiTrace, phi)
	}
	stats.Candidates = centers.Rows

	// Step 7: weighting job.
	weights := weightJob(spans, ds, centers, engine, &stats)

	// Step 8: sequential reclustering on the driver.
	cds := WeightedCandidates(centers, weights)
	final := seed.KMeansPP(cds, cfg.K, r, 1)

	// Final cost pass (also an MR job, like the evaluation step in §3.5).
	stats.SeedCost = costJob(spans, ds, final, engine, &stats)
	return final, stats
}

// sampleOnly is the Bernoulli selection over cached distances. It reads the
// caches but performs no distance work (the cache is current); it is merged
// with the update pass in runRound when possible, but the very first sampling
// of a round needs φ from the previous pass, hence this dedicated job.
func sampleOnly(spans []Span, d2 []float64, phi, ell float64, seedVal uint64, round int, engine mr.Config, stats *Stats) []int {
	mapper := func(s Span, emit func(int, []int)) {
		var sel []int
		for i := s.Lo; i < s.Hi; i++ {
			if d2[i] <= 0 {
				continue
			}
			p := ell * d2[i] / phi
			if p >= 1 || rng.PointRand(seedVal, round, i) < p {
				sel = append(sel, i)
			}
		}
		emit(0, sel)
	}
	reducer := func(_ int, vs [][]int, emit func([]int)) {
		var all []int
		for _, v := range vs {
			all = append(all, v...)
		}
		emit(all)
	}
	out, counters := mr.Run(spans, mapper, nil, reducer, engine)
	stats.MRRounds++
	stats.Counters.Add(counters)
	if len(out) == 0 {
		return nil
	}
	return out[0]
}

// weightJob is Step 7 as map + combine + reduce over (centerIdx, weight).
func weightJob(spans []Span, ds *geom.Dataset, centers *geom.Matrix, engine mr.Config, stats *Stats) []float64 {
	mapper := func(s Span, emit func(int, float64)) {
		for i := s.Lo; i < s.Hi; i++ {
			idx, _ := geom.Nearest(ds.Point(i), centers)
			emit(idx, ds.W(i))
		}
	}
	combiner := func(_ int, vs []float64) float64 { return sum(vs) }
	type cw struct {
		C int
		W float64
	}
	reducer := func(c int, vs []float64, emit func(cw)) { emit(cw{c, sum(vs)}) }
	out, counters := mr.Run(spans, mapper, combiner, reducer, engine)
	stats.MRRounds++
	stats.Counters.Add(counters)
	weights := make([]float64, centers.Rows)
	for _, o := range out {
		weights[o.C] = o.W
	}
	return weights
}

// costJob computes φ_X(C) as one MR job.
func costJob(spans []Span, ds *geom.Dataset, centers *geom.Matrix, engine mr.Config, stats *Stats) float64 {
	mapper := func(s Span, emit func(int, float64)) {
		var part float64
		for i := s.Lo; i < s.Hi; i++ {
			_, d := geom.Nearest(ds.Point(i), centers)
			part += ds.W(i) * d
		}
		emit(0, part)
	}
	reducer := func(_ int, vs []float64, emit func(float64)) { emit(sum(vs)) }
	out, counters := mr.Run(spans, mapper, nil, reducer, engine)
	stats.MRRounds++
	stats.Counters.Add(counters)
	if len(out) == 0 {
		return 0
	}
	return out[0]
}

// WeightedCandidates packages the Step 7 output as the weighted dataset that
// Step 8 reclusters: candidates with positive weight, in center order. The
// networked realization (internal/distkm) shares it so both drivers hand
// k-means++ the exact same input.
func WeightedCandidates(centers *geom.Matrix, weights []float64) *geom.Dataset {
	keep := make([]int, 0, centers.Rows)
	for i, w := range weights {
		if w > 0 {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		keep = append(keep, 0)
		weights[0] = 1
	}
	x := geom.NewMatrix(len(keep), centers.Cols)
	w := make([]float64, len(keep))
	for j, i := range keep {
		copy(x.Row(j), centers.Row(i))
		w[j] = weights[i]
	}
	return &geom.Dataset{X: x, Weight: w}
}

// Lloyd runs Lloyd's iteration where each iteration is one MapReduce job
// (the standard parallel k-means the paper cites from Mahout). Empty clusters
// keep their previous position, as in the textbook MR implementation.
func Lloyd(ds *geom.Dataset, init *geom.Matrix, maxIter int, cluster Config) (lloyd.Result, Stats) {
	if maxIter <= 0 {
		maxIter = 20 // the paper bounds parallel Lloyd at 20 iterations (§4.2)
	}
	n := ds.N()
	spans := MakeSpans(n, cluster.Mappers)
	engine := cluster.engine()
	centers := init.Clone()
	k, d := centers.Rows, centers.Cols
	stats := Stats{}
	res := lloyd.Result{Centers: centers}

	type acc struct {
		Vec []float64 // Σ w·x followed by Σ w, length d+1
		Phi float64
	}
	for it := 0; it < maxIter; it++ {
		mapper := func(s Span, emit func(int, acc)) {
			local := make([]acc, k)
			for i := s.Lo; i < s.Hi; i++ {
				p := ds.Point(i)
				idx, dist := geom.Nearest(p, centers)
				w := ds.W(i)
				a := &local[idx]
				if a.Vec == nil {
					a.Vec = make([]float64, d+1)
				}
				for j, v := range p {
					a.Vec[j] += w * v
				}
				a.Vec[d] += w
				a.Phi += w * dist
			}
			for c := range local {
				if local[c].Vec != nil {
					emit(c, local[c])
				}
			}
		}
		combiner := func(_ int, vs []acc) acc {
			out := acc{Vec: make([]float64, d+1)}
			for _, v := range vs {
				for j := range out.Vec {
					out.Vec[j] += v.Vec[j]
				}
				out.Phi += v.Phi
			}
			return out
		}
		type cu struct {
			C   int
			Row []float64
			Phi float64
		}
		reducer := func(c int, vs []acc, emit func(cu)) {
			total := make([]float64, d+1)
			var phi float64
			for _, v := range vs {
				for j := range total {
					total[j] += v.Vec[j]
				}
				phi += v.Phi
			}
			row := make([]float64, d)
			if total[d] > 0 {
				for j := 0; j < d; j++ {
					row[j] = total[j] / total[d]
				}
			}
			emit(cu{C: c, Row: row, Phi: phi})
		}
		out, counters := mr.Run(spans, mapper, combiner, reducer, engine)
		stats.MRRounds++
		stats.Counters.Add(counters)

		var phi float64
		maxMove := 0.0
		for _, o := range out {
			phi += o.Phi
			if len(o.Row) == d {
				move := geom.SqDist(o.Row, centers.Row(o.C))
				if move > maxMove {
					maxMove = move
				}
				copy(centers.Row(o.C), o.Row)
			}
		}
		res.Iters = it + 1
		res.Cost = phi
		res.CostTrace = append(res.CostTrace, phi)
		if maxMove == 0 {
			res.Converged = true
			break
		}
	}
	// res.Cost above is the cost w.r.t. the PREVIOUS centers (assignment
	// cost); report the final cost against the final centers.
	res.Assign, res.Cost = lloyd.Assign(ds, centers, 0)
	stats.SeedCost = res.Cost
	return res, stats
}

func sum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

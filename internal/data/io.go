package data

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"kmeansll/internal/geom"
)

// WriteCSV writes the dataset as plain comma-separated values, one point per
// line, no header. Weights, when present, are written as a final column
// prefixed by a "# weighted" first line so ReadCSV can round-trip them.
func WriteCSV(w io.Writer, ds *geom.Dataset) error {
	bw := bufio.NewWriter(w)
	weighted := ds.Weight != nil
	if weighted {
		if _, err := bw.WriteString("# weighted\n"); err != nil {
			return err
		}
	}
	var sb strings.Builder
	for i := 0; i < ds.N(); i++ {
		sb.Reset()
		for j, v := range ds.Point(i) {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		if weighted {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(ds.Weight[i], 'g', -1, 64))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or any headerless numeric
// CSV). Lines starting with '#' other than the weight marker are skipped.
func ReadCSV(r io.Reader) (*geom.Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	weighted := false
	x := &geom.Matrix{}
	var weights []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if strings.Contains(text, "weighted") && x.Rows == 0 {
				weighted = true
			}
			continue
		}
		fields := strings.Split(text, ",")
		vals := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d col %d: %w", line, j+1, err)
			}
			vals[j] = v
		}
		if weighted {
			if len(vals) < 2 {
				return nil, fmt.Errorf("data: line %d: weighted row needs ≥2 columns", line)
			}
			weights = append(weights, vals[len(vals)-1])
			vals = vals[:len(vals)-1]
		}
		if x.Rows > 0 && len(vals) != x.Cols {
			return nil, fmt.Errorf("data: line %d has %d columns, want %d", line, len(vals), x.Cols)
		}
		x.AppendRow(vals)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	ds := &geom.Dataset{X: x}
	if weighted {
		ds.Weight = weights
	}
	return ds, nil
}

// SaveCSV writes the dataset to a file path.
func SaveCSV(path string, ds *geom.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCSV(f, ds); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSV reads a dataset from a file path.
func LoadCSV(path string) (*geom.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

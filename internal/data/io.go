package data

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"kmeansll/internal/dsio"
	"kmeansll/internal/geom"
)

// WriteCSV writes the dataset as plain comma-separated values, one point per
// line, no header. Weights, when present, are written as a final column
// prefixed by a "# weighted" first line so ReadCSV can round-trip them.
func WriteCSV(w io.Writer, ds *geom.Dataset) error {
	bw := bufio.NewWriter(w)
	weighted := ds.Weight != nil
	if weighted {
		if _, err := bw.WriteString("# weighted\n"); err != nil {
			return err
		}
	}
	var sb strings.Builder
	for i := 0; i < ds.N(); i++ {
		sb.Reset()
		for j, v := range ds.Point(i) {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		if weighted {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(ds.Weight[i], 'g', -1, 64))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or any headerless numeric
// CSV). Lines starting with '#' other than the weight marker are skipped.
// Every value must be finite: strconv.ParseFloat happily parses "NaN" and
// "Inf", but a single such value silently poisons every distance kernel
// downstream, so the loader rejects them with the offending line and column.
func ReadCSV(r io.Reader) (*geom.Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	weighted := false
	x := &geom.Matrix{}
	var weights []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if strings.Contains(text, "weighted") && x.Rows == 0 {
				weighted = true
			}
			continue
		}
		fields := strings.Split(text, ",")
		vals := make([]float64, len(fields))
		for j, f := range fields {
			v, err := ParseValue(f, line, j+1)
			if err != nil {
				return nil, fmt.Errorf("data: %w", err)
			}
			vals[j] = v
		}
		if weighted {
			if len(vals) < 2 {
				return nil, fmt.Errorf("data: line %d: weighted row needs ≥2 columns", line)
			}
			weights = append(weights, vals[len(vals)-1])
			vals = vals[:len(vals)-1]
		}
		if x.Rows > 0 && len(vals) != x.Cols {
			return nil, fmt.Errorf("data: line %d has %d columns, want %d", line, len(vals), x.Cols)
		}
		x.AppendRow(vals)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	ds := &geom.Dataset{X: x}
	if weighted {
		ds.Weight = weights
	}
	return ds, nil
}

// ParseValue parses one CSV field as a finite float64, naming the 1-based
// line and column on failure. strconv.ParseFloat happily parses "NaN" and
// "Inf", but one such value silently poisons every distance kernel
// downstream, so every CSV consumer (ReadCSV here, kmstream's row scanner)
// funnels through this single validation point.
func ParseValue(field string, line, col int) (float64, error) {
	field = strings.TrimSpace(field)
	v, err := strconv.ParseFloat(field, 64)
	if err != nil {
		return 0, fmt.Errorf("line %d col %d: %w", line, col, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("line %d col %d: non-finite value %q", line, col, field)
	}
	return v, nil
}

// SaveCSV writes the dataset to a file path.
func SaveCSV(path string, ds *geom.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCSV(f, ds); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSV reads a dataset from a file path.
func LoadCSV(path string) (*geom.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// nopCloser is the closer returned for loads that hold no resources.
type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// Load opens a dataset of any supported kind, dispatching on the extension:
// ".kmd" binary files are mmap'd (zero-copy where the platform allows),
// ".json" files are treated as shard manifests and concatenated, everything
// else is parsed as CSV. The returned closer releases any mapping; the
// dataset must not be used after closing it. This is the single entry point
// the CLI tools load through, so every tool accepts every format.
func Load(path string) (*geom.Dataset, io.Closer, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case dsio.Ext:
		return dsio.Load(path)
	case ".json":
		m, err := dsio.LoadManifest(path)
		if err != nil {
			return nil, nil, err
		}
		ds, err := m.Load()
		if err != nil {
			return nil, nil, err
		}
		return ds, nopCloser{}, nil
	default:
		ds, err := LoadCSV(path)
		if err != nil {
			return nil, nil, err
		}
		return ds, nopCloser{}, nil
	}
}

package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV reader never panics and that whatever it
// accepts is a structurally valid dataset.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("# weighted\n1,2,0.5\n")
	f.Add("")
	f.Add("#only a comment\n")
	f.Add("1\n2\n3\n")
	f.Add("1,2\n3\n")
	f.Add("nan,inf\n")
	f.Add("1e309,2\n")
	f.Add(strings.Repeat("9,", 100) + "9\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		if ds.X.Rows*ds.X.Cols != len(ds.X.Data) {
			t.Fatalf("accepted dataset has inconsistent storage: %dx%d vs %d",
				ds.X.Rows, ds.X.Cols, len(ds.X.Data))
		}
		if ds.Weight != nil && len(ds.Weight) != ds.X.Rows {
			t.Fatalf("accepted dataset has %d weights for %d rows",
				len(ds.Weight), ds.X.Rows)
		}
		// Accepted numeric data must round-trip.
		if ds.N() > 0 && ds.Validate() == nil {
			var buf bytes.Buffer
			if err := WriteCSV(&buf, ds); err != nil {
				t.Fatalf("write-back failed: %v", err)
			}
			back, err := ReadCSV(&buf)
			if err != nil {
				t.Fatalf("re-read failed: %v", err)
			}
			if back.N() != ds.N() || back.Dim() != ds.Dim() {
				t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
					ds.N(), ds.Dim(), back.N(), back.Dim())
			}
		}
	})
}

// Package data provides the datasets of the paper's evaluation (§4.1) —
// GaussMixture exactly as described, plus synthetic stand-ins for the two UCI
// datasets (Spam, KDDCup1999) that are unreachable in this offline build —
// and CSV I/O and normalization utilities.
//
// The stand-ins reproduce the statistical properties the paper's experiments
// actually exercise (see DESIGN.md §3 for the substitution rationale):
// SpamLike mimics heavy-tailed non-negative frequency features with a
// dominant-scale column and outliers; KDDLike mimics Zipf-skewed cluster
// masses with wide dynamic ranges and rare far-away clusters.
package data

import (
	"math"

	"kmeansll/internal/geom"
	"kmeansll/internal/rng"
)

// GaussMixtureConfig matches §4.1: k centers drawn from a spherical Gaussian
// with variance R², unit-variance Gaussians around each center, equal
// weights.
type GaussMixtureConfig struct {
	N    int     // points; paper uses 10 000
	D    int     // dimensions; paper uses 15
	K    int     // mixture components
	R    float64 // center-scale; paper uses 1, 10, 100
	Seed uint64
}

// GaussMixture generates the synthetic dataset and returns it together with
// the true mixture centers (whose clustering cost approximates the optimum,
// as the paper notes).
func GaussMixture(cfg GaussMixtureConfig) (*geom.Dataset, *geom.Matrix) {
	if cfg.N <= 0 || cfg.D <= 0 || cfg.K <= 0 {
		panic("data: GaussMixture requires positive N, D, K")
	}
	r := rng.New(cfg.Seed)
	centers := geom.NewMatrix(cfg.K, cfg.D)
	for i := range centers.Data {
		centers.Data[i] = cfg.R * r.NormFloat64()
	}
	x := geom.NewMatrix(cfg.N, cfg.D)
	for i := 0; i < cfg.N; i++ {
		c := centers.Row(r.Intn(cfg.K))
		row := x.Row(i)
		for j := 0; j < cfg.D; j++ {
			row[j] = c[j] + r.NormFloat64()
		}
	}
	return geom.NewDataset(x), centers
}

// SpamLikeConfig sizes the Spam stand-in. Defaults (zero values) reproduce
// the UCI Spambase shape: 4601 points, 58 features.
type SpamLikeConfig struct {
	N    int // 0 ⇒ 4601
	Seed uint64
}

// SpamLike generates a dataset with the statistical profile of the UCI
// Spambase features: 54 sparse heavy-tailed "word/char frequency" columns
// (log-normal magnitudes, ~70% zeros, cluster-dependent activation), three
// "capital run length" columns on much larger scales (the average/longest/
// total run statistics), and ~5% outlier points with extreme values — the
// points the paper says "confuse" k-means++ (§5.1).
//
// The latent structure is a mixture of 12 "campaign" clusters (spam and ham
// templates), so moderate k recovers real structure.
func SpamLike(cfg SpamLikeConfig) *geom.Dataset {
	n := cfg.N
	if n <= 0 {
		n = 4601
	}
	const d = 58
	const latent = 12
	r := rng.New(cfg.Seed)

	// Per-cluster activation pattern: which frequency features are "on" and
	// with what log-scale.
	type cluster struct {
		active []bool
		mu     []float64
		capMu  float64 // log-scale of the capital-run features
	}
	clusters := make([]cluster, latent)
	for c := range clusters {
		cl := cluster{active: make([]bool, 54), mu: make([]float64, 54)}
		for j := 0; j < 54; j++ {
			cl.active[j] = r.Float64() < 0.3
			cl.mu[j] = -1 + 1.5*r.NormFloat64()
		}
		cl.capMu = 1.5 + 1.2*r.NormFloat64()
		clusters[c] = cl
	}
	// Skewed cluster masses (real spam data is dominated by a few templates).
	zipf := rng.NewZipf(latent, 1.2)

	x := geom.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		cl := clusters[zipf.Draw(r)]
		row := x.Row(i)
		outlier := r.Float64() < 0.05
		for j := 0; j < 54; j++ {
			on := cl.active[j]
			// Feature noise: occasionally flip activation.
			if r.Float64() < 0.08 {
				on = !on
			}
			if !on {
				row[j] = 0
				continue
			}
			v := r.LogNormal(cl.mu[j], 0.8)
			if outlier {
				v *= r.LogNormal(2, 1) // extreme frequency spikes
			}
			// Spambase frequencies are percentages in [0, 100].
			row[j] = math.Min(v, 100)
		}
		// Capital-run features: average, longest, total — long-tailed and on
		// scales up to ~1e4, which dominate raw squared distances.
		avg := 1 + r.LogNormal(cl.capMu*0.3, 0.6)
		longest := avg * (1 + r.LogNormal(cl.capMu*0.5, 0.9))
		total := longest * (1 + r.LogNormal(cl.capMu*0.7, 1.0))
		if outlier {
			longest *= 10
			total *= 25
		}
		row[54] = math.Min(avg, 1.1e3)
		row[55] = math.Min(longest, 1e4)
		row[56] = math.Min(total, 1.6e4)
		// The 58th Spambase column is the class label {0,1}; keep a binary
		// column so the dimensionality matches the paper's "58 dimensions".
		if r.Float64() < 0.4 {
			row[57] = 1
		}
	}
	return geom.NewDataset(x)
}

// KDDLikeConfig sizes the KDDCup1999 stand-in. The full dataset has 4.8M
// points; experiments here default to a laptop-scale sample (the paper itself
// uses a 10% sample for its parameter sweeps).
type KDDLikeConfig struct {
	N    int // 0 ⇒ 200 000
	Seed uint64
}

// KDDLike generates a dataset with the profile of the KDD Cup 1999 network-
// connection data in 42 dimensions: a handful of huge clusters ("normal" and
// "smurf"-style traffic holding most of the mass, Zipf tail of rare attack
// types), log-normal volume columns (bytes sent/received, duration) with
// dynamic range spanning ~6 orders of magnitude, bounded rate columns in
// [0,1], small-integer count columns, and a few one-hot-ish protocol flags.
// Uniform-random seeding on this profile is orders of magnitude worse than
// D²-based seeding (Table 3), because the rare far clusters carry enormous
// squared distances.
func KDDLike(cfg KDDLikeConfig) *geom.Dataset {
	n := cfg.N
	if n <= 0 {
		n = 200000
	}
	const d = 42
	const latent = 60 // attack/service archetypes
	r := rng.New(cfg.Seed)

	type cluster struct {
		volMu  [3]float64  // duration, src_bytes, dst_bytes log-scales
		rates  [20]float64 // mean of bounded rate features
		counts [12]float64 // mean of count features
		flags  [7]float64  // protocol/service flag pattern
		spread float64
	}
	clusters := make([]cluster, latent)
	for c := range clusters {
		var cl cluster
		for j := range cl.volMu {
			cl.volMu[j] = 2 + 3*r.NormFloat64() // e^2 … e^11 byte scales
		}
		for j := range cl.rates {
			cl.rates[j] = r.Float64()
		}
		for j := range cl.counts {
			cl.counts[j] = r.LogNormal(2, 1.5)
		}
		for j := range cl.flags {
			if r.Float64() < 0.3 {
				cl.flags[j] = 1
			}
		}
		cl.spread = 0.2 + 0.5*r.Float64()
		clusters[c] = cl
	}
	// Mass profile: two dominant clusters (~80%), Zipf tail for the rest —
	// the smurf/neptune/normal skew of the real data.
	zipf := rng.NewZipf(latent, 1.6)

	x := geom.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		cl := &clusters[zipf.Draw(r)]
		row := x.Row(i)
		j := 0
		for v := 0; v < 3; v++ {
			row[j] = r.LogNormal(cl.volMu[v], cl.spread*2)
			j++
		}
		for v := 0; v < 20; v++ {
			row[j] = clamp01(cl.rates[v] + cl.spread*0.3*r.NormFloat64())
			j++
		}
		for v := 0; v < 12; v++ {
			row[j] = math.Max(0, cl.counts[v]*(1+cl.spread*r.NormFloat64()))
			j++
		}
		for v := 0; v < 7; v++ {
			f := cl.flags[v]
			if r.Float64() < 0.02 {
				f = 1 - f
			}
			row[j] = f
			j++
		}
	}
	return geom.NewDataset(x)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Sample returns a uniform random fraction of the dataset (the paper uses a
// 10% sample of KDDCup1999 for Figure 5.1).
func Sample(ds *geom.Dataset, fraction float64, seed uint64) *geom.Dataset {
	if fraction <= 0 || fraction > 1 {
		panic("data: Sample fraction must be in (0, 1]")
	}
	r := rng.New(seed)
	m := int(math.Round(fraction * float64(ds.N())))
	if m < 1 {
		m = 1
	}
	idx := r.SampleWithoutReplacement(ds.N(), m)
	return ds.Subset(idx)
}

// ZNormalize standardizes every column to zero mean and unit variance in
// place (constant columns are left centered). Returns the per-column means
// and standard deviations so callers can transform new points.
func ZNormalize(ds *geom.Dataset) (mean, std []float64) {
	n, d := ds.N(), ds.Dim()
	mean = make([]float64, d)
	std = make([]float64, d)
	if n == 0 {
		return mean, std
	}
	for i := 0; i < n; i++ {
		for j, v := range ds.Point(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		for j, v := range ds.Point(i) {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
	}
	for i := 0; i < n; i++ {
		row := ds.Point(i)
		for j := range row {
			row[j] -= mean[j]
			if std[j] > 0 {
				row[j] /= std[j]
			}
		}
	}
	return mean, std
}

package data

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
)

func TestGaussMixtureShape(t *testing.T) {
	ds, centers := GaussMixture(GaussMixtureConfig{N: 1000, D: 15, K: 20, R: 10, Seed: 1})
	if ds.N() != 1000 || ds.Dim() != 15 {
		t.Fatalf("got %dx%d", ds.N(), ds.Dim())
	}
	if centers.Rows != 20 || centers.Cols != 15 {
		t.Fatalf("centers %dx%d", centers.Rows, centers.Cols)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGaussMixtureTrueCentersNearOptimal(t *testing.T) {
	// For R=100 the mixture is extremely well separated: the true centers'
	// cost ≈ n·d (unit-variance noise), and must be far below a random
	// seeding's cost.
	ds, centers := GaussMixture(GaussMixtureConfig{N: 5000, D: 15, K: 50, R: 100, Seed: 2})
	trueCost := lloyd.Cost(ds, centers, 0)
	expected := float64(5000 * 15)
	if trueCost > 1.5*expected || trueCost < 0.5*expected {
		t.Fatalf("true-center cost %v, expected ≈ %v", trueCost, expected)
	}
	rc := seed.Random(ds, 50, rng.New(3))
	if randCost := lloyd.Cost(ds, rc, 0); randCost < 5*trueCost {
		t.Fatalf("random cost %v not ≫ true cost %v for R=100", randCost, trueCost)
	}
}

func TestGaussMixtureSeparationGrowsWithR(t *testing.T) {
	// Larger R ⇒ relatively better-separated clusters ⇒ the ratio of random
	// seeding cost to true-center cost grows.
	ratio := func(R float64) float64 {
		ds, centers := GaussMixture(GaussMixtureConfig{N: 3000, D: 15, K: 20, R: R, Seed: 4})
		rc := seed.Random(ds, 20, rng.New(5))
		return lloyd.Cost(ds, rc, 0) / lloyd.Cost(ds, centers, 0)
	}
	r1, r100 := ratio(1), ratio(100)
	if r100 < 4*r1 {
		t.Fatalf("separation ratio did not grow with R: R=1 → %v, R=100 → %v", r1, r100)
	}
}

func TestGaussMixtureDeterministic(t *testing.T) {
	a, _ := GaussMixture(GaussMixtureConfig{N: 100, D: 5, K: 3, R: 10, Seed: 6})
	b, _ := GaussMixture(GaussMixtureConfig{N: 100, D: 5, K: 3, R: 10, Seed: 6})
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("GaussMixture not deterministic")
		}
	}
}

func TestSpamLikeProfile(t *testing.T) {
	ds := SpamLike(SpamLikeConfig{Seed: 7})
	if ds.N() != 4601 || ds.Dim() != 58 {
		t.Fatalf("got %dx%d, want 4601x58", ds.N(), ds.Dim())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Frequency block must be non-negative, bounded by 100, and mostly zero.
	zeros, total := 0, 0
	for i := 0; i < ds.N(); i++ {
		row := ds.Point(i)
		for j := 0; j < 54; j++ {
			if row[j] < 0 || row[j] > 100 {
				t.Fatalf("frequency out of range at (%d,%d): %v", i, j, row[j])
			}
			if row[j] == 0 {
				zeros++
			}
			total++
		}
	}
	sparsity := float64(zeros) / float64(total)
	if sparsity < 0.5 || sparsity > 0.95 {
		t.Fatalf("frequency sparsity %v outside [0.5, 0.95]", sparsity)
	}
	// Capital-run columns must dominate the scale (they drive raw-distance
	// behaviour in the paper's Spam experiments).
	var freqMax, capMax float64
	for i := 0; i < ds.N(); i++ {
		row := ds.Point(i)
		for j := 0; j < 54; j++ {
			freqMax = math.Max(freqMax, row[j])
		}
		capMax = math.Max(capMax, row[56])
	}
	if capMax < 10*freqMax {
		t.Fatalf("capital-run scale %v does not dominate frequencies %v", capMax, freqMax)
	}
}

func TestKDDLikeProfile(t *testing.T) {
	ds := KDDLike(KDDLikeConfig{N: 20000, Seed: 8})
	if ds.N() != 20000 || ds.Dim() != 42 {
		t.Fatalf("got %dx%d, want 20000x42", ds.N(), ds.Dim())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rate block must stay within [0,1].
	for i := 0; i < 1000; i++ {
		row := ds.Point(i)
		for j := 3; j < 23; j++ {
			if row[j] < 0 || row[j] > 1 {
				t.Fatalf("rate feature out of [0,1] at (%d,%d): %v", i, j, row[j])
			}
		}
	}
	// Volume columns must span several orders of magnitude.
	var vals []float64
	for i := 0; i < ds.N(); i++ {
		if v := ds.Point(i)[1]; v > 0 {
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)
	p1, p99 := vals[len(vals)/100], vals[len(vals)*99/100]
	if p99/p1 < 1e3 {
		t.Fatalf("volume dynamic range p99/p1 = %v, want ≥ 1e3", p99/p1)
	}
}

func TestKDDLikeSkewedMasses(t *testing.T) {
	// D² seeding should beat uniform seeding by a huge factor on this
	// profile (the Table 3 phenomenon).
	ds := KDDLike(KDDLikeConfig{N: 20000, Seed: 9})
	k := 50
	rand := lloyd.Cost(ds, seed.Random(ds, k, rng.New(10)), 0)
	pp := lloyd.Cost(ds, seed.KMeansPP(ds, k, rng.New(11), 0), 0)
	if rand < 10*pp {
		t.Fatalf("uniform seeding (%v) not ≫ D² seeding (%v) on KDD profile", rand, pp)
	}
}

func TestSampleFraction(t *testing.T) {
	ds := KDDLike(KDDLikeConfig{N: 10000, Seed: 12})
	s := Sample(ds, 0.1, 13)
	if s.N() != 1000 {
		t.Fatalf("10%% sample has %d points", s.N())
	}
	if s.Dim() != ds.Dim() {
		t.Fatalf("sample dim %d", s.Dim())
	}
}

func TestSamplePanicsOnBadFraction(t *testing.T) {
	ds := SpamLike(SpamLikeConfig{N: 10, Seed: 1})
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Sample(%v) did not panic", f)
				}
			}()
			Sample(ds, f, 1)
		}()
	}
}

func TestZNormalize(t *testing.T) {
	ds, _ := GaussMixture(GaussMixtureConfig{N: 2000, D: 6, K: 4, R: 30, Seed: 14})
	mean, std := ZNormalize(ds)
	if len(mean) != 6 || len(std) != 6 {
		t.Fatalf("stats lengths %d %d", len(mean), len(std))
	}
	for j := 0; j < 6; j++ {
		var m, v float64
		for i := 0; i < ds.N(); i++ {
			m += ds.Point(i)[j]
		}
		m /= float64(ds.N())
		for i := 0; i < ds.N(); i++ {
			dv := ds.Point(i)[j] - m
			v += dv * dv
		}
		v /= float64(ds.N())
		if math.Abs(m) > 1e-9 {
			t.Fatalf("column %d mean %v after normalize", j, m)
		}
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("column %d variance %v after normalize", j, v)
		}
	}
}

func TestZNormalizeConstantColumn(t *testing.T) {
	x := geom.FromRows([][]float64{{5, 1}, {5, 2}, {5, 3}})
	ds := geom.NewDataset(x)
	ZNormalize(ds)
	for i := 0; i < 3; i++ {
		if ds.Point(i)[0] != 0 {
			t.Fatalf("constant column not centered: %v", ds.Point(i)[0])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, _ := GaussMixture(GaussMixtureConfig{N: 50, D: 4, K: 2, R: 5, Seed: 15})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Dim() != ds.Dim() {
		t.Fatalf("round trip shape %dx%d", back.N(), back.Dim())
	}
	for i := range ds.X.Data {
		if ds.X.Data[i] != back.X.Data[i] {
			t.Fatalf("round trip value mismatch at %d", i)
		}
	}
}

func TestCSVRoundTripWeighted(t *testing.T) {
	ds := &geom.Dataset{
		X:      geom.FromRows([][]float64{{1, 2}, {3, 4}}),
		Weight: []float64{0.5, 7},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Weight == nil || back.Weight[0] != 0.5 || back.Weight[1] != 7 {
		t.Fatalf("weights lost: %v", back.Weight)
	}
	if back.Dim() != 2 {
		t.Fatalf("weighted round trip dim %d", back.Dim())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("1,2\n3,nope\n")); err == nil {
		t.Fatal("accepted non-numeric field")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,2\n3\n")); err == nil {
		t.Fatal("accepted ragged rows")
	}
}

func TestReadCSVRejectsNonFinite(t *testing.T) {
	// ParseFloat happily parses these spellings; the loader must not.
	for _, tc := range []struct {
		input    string
		wantLine int
		wantCol  int
	}{
		{"1,2\n3,NaN\n", 2, 2},
		{"1,2\nnan,4\n", 2, 1},
		{"1,Inf\n", 1, 2},
		{"-inf,2\n", 1, 1},
		{"1,+Infinity\n", 1, 2},
		{"1e309,2\n", 1, 1}, // overflows float64 to +Inf
		{"# weighted\n1,2,inf\n", 2, 3},
	} {
		_, err := ReadCSV(bytes.NewBufferString(tc.input))
		if err == nil {
			t.Fatalf("%q: accepted a non-finite value", tc.input)
		}
		want := fmt.Sprintf("line %d col %d", tc.wantLine, tc.wantCol)
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("%q: error %q does not name %s", tc.input, err, want)
		}
	}
}

func TestReadCSVSkipsComments(t *testing.T) {
	ds, err := ReadCSV(bytes.NewBufferString("# hello\n1,2\n\n# more\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Weight != nil {
		t.Fatalf("got %d points, weighted=%v", ds.N(), ds.Weight != nil)
	}
}

package kmeansll

// Cross-package integration tests: full pipelines spanning generators, every
// initializer, every Lloyd kernel, the MapReduce realization, the streaming
// coreset, CSV round trips and the quality metrics — the flows a user of the
// repository actually runs.

import (
	"bytes"
	"math"
	"testing"

	"kmeansll/internal/core"
	"kmeansll/internal/coreset"
	"kmeansll/internal/data"
	"kmeansll/internal/geom"
	"kmeansll/internal/kdtree"
	"kmeansll/internal/lloyd"
	"kmeansll/internal/metrics"
	"kmeansll/internal/mrkm"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
	"kmeansll/internal/stream"
)

// TestAllKernelsAgreeOnFixedPointCost verifies that the four exact Lloyd
// implementations (naive, Elkan, Hamerly, kd-tree filtering) reach the same
// cost from a shared k-means|| seed on a realistic workload.
func TestAllKernelsAgreeOnFixedPointCost(t *testing.T) {
	ds := data.KDDLike(data.KDDLikeConfig{N: 4000, Seed: 1})
	init, _ := core.Init(ds, core.Config{K: 20, Seed: 2})

	naive := lloyd.Run(ds, init, lloyd.Config{Method: lloyd.Naive, MaxIter: 60})
	elkan := lloyd.Run(ds, init, lloyd.Config{Method: lloyd.Elkan, MaxIter: 60})
	hamerly := lloyd.Run(ds, init, lloyd.Config{Method: lloyd.Hamerly, MaxIter: 60})
	_, treeCost, _, _ := kdtree.Build(ds, 16).Run(init, 60)

	tol := 1e-6 * (1 + naive.Cost)
	for name, cost := range map[string]float64{
		"elkan": elkan.Cost, "hamerly": hamerly.Cost, "kdtree": treeCost,
	} {
		if math.Abs(cost-naive.Cost) > tol {
			t.Fatalf("%s cost %v != naive %v", name, cost, naive.Cost)
		}
	}
}

// TestEndToEndCSVPipeline mirrors the CLI flow: generate → CSV → reload →
// cluster → save model → reload model → predict.
func TestEndToEndCSVPipeline(t *testing.T) {
	orig, _ := data.GaussMixture(data.GaussMixtureConfig{N: 500, D: 6, K: 5, R: 25, Seed: 3})
	var csv bytes.Buffer
	if err := data.WriteCSV(&csv, orig); err != nil {
		t.Fatal(err)
	}
	ds, err := data.ReadCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	points := make([][]float64, ds.N())
	for i := range points {
		points[i] = ds.Point(i)
	}
	m, err := Cluster(points, Config{K: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if back.Predict(points[i]) != m.Assign[i] {
			t.Fatalf("reloaded model disagrees at point %d", i)
		}
	}
}

// TestSeedingFamilyQualityOrder checks the cross-package quality story on
// labeled data: every D²-based seeding recovers the mixture (high NMI),
// Random does not, and all seeds drive Lloyd to a sane fixed point.
func TestSeedingFamilyQualityOrder(t *testing.T) {
	const k = 10
	ds, truth := data.GaussMixture(data.GaussMixtureConfig{N: 3000, D: 10, K: k, R: 40, Seed: 5})
	labels := make([]int, ds.N())
	for i := range labels {
		idx, _ := geom.Nearest(ds.Point(i), truth)
		labels[i] = idx
	}
	nmiOf := func(init *geom.Matrix) float64 {
		res := lloyd.Run(ds, init, lloyd.Config{MaxIter: 100})
		return metrics.NMI(res.Assign, labels, res.Centers.Rows, k)
	}
	kmll, _ := core.Init(ds, core.Config{K: k, Seed: 6})
	kmpp := seed.KMeansPP(ds, k, rng.New(7), 0)
	greedy := seed.GreedyKMeansPP(ds, k, 3, rng.New(8), 0)
	part, _ := stream.Partition(ds, stream.Config{K: k, Seed: 9})
	for name, init := range map[string]*geom.Matrix{
		"kmeans||": kmll, "kmeans++": kmpp, "greedy": greedy, "partition": part,
	} {
		if v := nmiOf(init); v < 0.9 {
			t.Fatalf("%s NMI = %v, want > 0.9 on well-separated mixture", name, v)
		}
	}
}

// TestStreamingMatchesBatchOnKDD compares one-pass StreamKM++ clustering to
// batch k-means|| on the same skewed workload; the coreset route must stay
// within a modest factor.
func TestStreamingMatchesBatchOnKDD(t *testing.T) {
	const k = 20
	ds := data.KDDLike(data.KDDLikeConfig{N: 8000, Seed: 10})
	s := coreset.NewStream(30*k, ds.Dim(), 11)
	for i := 0; i < ds.N(); i++ {
		s.Add(ds.Point(i))
	}
	streamCenters := s.Cluster(k).Centers
	streamRes := lloyd.Run(ds, streamCenters, lloyd.Config{MaxIter: 20})

	batchInit, _ := core.Init(ds, core.Config{K: k, Seed: 12})
	batchRes := lloyd.Run(ds, batchInit, lloyd.Config{MaxIter: 20})

	if streamRes.Cost > 3*batchRes.Cost {
		t.Fatalf("streaming final cost %v ≫ batch %v", streamRes.Cost, batchRes.Cost)
	}
}

// TestMapReduceEndToEnd runs the full §3.5 pipeline (MR init + MR Lloyd) and
// cross-checks against the in-process pipeline with the same seed.
func TestMapReduceEndToEnd(t *testing.T) {
	ds := data.KDDLike(data.KDDLikeConfig{N: 5000, Seed: 13})
	cfg := core.Config{K: 15, L: 30, Rounds: 5, Seed: 14}
	mrInit, mrStats := mrkm.Init(ds, cfg, mrkm.Config{Mappers: 4})
	mrRes, _ := mrkm.Lloyd(ds, mrInit, 20, mrkm.Config{Mappers: 4})

	inInit, inStats := core.Init(ds, cfg)
	inRes := lloyd.Run(ds, inInit, lloyd.Config{MaxIter: 20})

	if mrStats.Candidates != inStats.Candidates {
		t.Fatalf("candidate sets diverged: %d vs %d", mrStats.Candidates, inStats.Candidates)
	}
	// Same seed → same init centers. The Lloyd trajectories may diverge
	// slightly: mrkm keeps empty clusters in place (textbook MR behaviour)
	// while lloyd.Run reseeds them, and FP summation order differs. Costs
	// must still agree closely.
	if math.Abs(mrRes.Cost-inRes.Cost) > 1e-2*(1+inRes.Cost) {
		t.Fatalf("MR pipeline cost %v != in-process %v", mrRes.Cost, inRes.Cost)
	}
}

// TestSphericalOnNormalizedSpam exercises the spherical variant on the text-
// like workload it is meant for.
func TestSphericalOnNormalizedSpam(t *testing.T) {
	ds := data.SpamLike(data.SpamLikeConfig{N: 1000, Seed: 15})
	zeros := lloyd.NormalizeRows(ds)
	if zeros > 0 {
		// Drop zero rows (messages with no features) before clustering.
		keep := make([]int, 0, ds.N())
		for i := 0; i < ds.N(); i++ {
			if geom.SqNorm(ds.Point(i)) > 0 {
				keep = append(keep, i)
			}
		}
		ds = ds.Subset(keep)
	}
	init, _ := core.Init(ds, core.Config{K: 8, Seed: 16})
	res := lloyd.Spherical(ds, init, lloyd.Config{MaxIter: 50})
	if res.Cohesion <= 0 {
		t.Fatalf("cohesion %v", res.Cohesion)
	}
	if !res.Converged && res.Iters < 50 {
		t.Fatal("spherical stopped early without converging")
	}
}

// TestTrimmedPipelineOnContaminatedData runs k-means|| seeding plus trimmed
// Lloyd on data with injected outliers and checks the outliers are flagged.
func TestTrimmedPipelineOnContaminatedData(t *testing.T) {
	ds, _ := data.GaussMixture(data.GaussMixtureConfig{N: 2000, D: 6, K: 8, R: 20, Seed: 17})
	r := rng.New(18)
	const nOut = 20
	for i := 0; i < nOut; i++ {
		p := make([]float64, 6)
		for j := range p {
			p[j] = 2000 + 100*r.NormFloat64()
		}
		ds.X.AppendRow(p)
	}
	init, _ := core.Init(ds, core.Config{K: 8, Seed: 19})
	res := lloyd.Trimmed(ds, init, lloyd.TrimmedConfig{TrimFraction: float64(nOut) / float64(ds.N())})
	flaggedInjected := 0
	for _, i := range res.Outliers {
		if i >= 2000 {
			flaggedInjected++
		}
	}
	if flaggedInjected < nOut*8/10 {
		t.Fatalf("only %d/%d injected outliers flagged", flaggedInjected, nOut)
	}
}

// TestMetricsAgreeAcrossPipelines sanity-checks silhouette/DB on the same
// fit: a k-means|| fit on separated blobs scores well on both.
func TestMetricsAgreeAcrossPipelines(t *testing.T) {
	ds, _ := data.GaussMixture(data.GaussMixtureConfig{N: 1500, D: 5, K: 6, R: 50, Seed: 20})
	init, _ := core.Init(ds, core.Config{K: 6, Seed: 21})
	res := lloyd.Run(ds, init, lloyd.Config{})
	sil := metrics.Silhouette(ds, res.Assign, 6, 500, 22)
	db := metrics.DaviesBouldin(ds, res.Centers, res.Assign)
	if sil < 0.6 {
		t.Fatalf("silhouette %v on well-separated fit", sil)
	}
	if db <= 0 || db > 0.7 {
		t.Fatalf("Davies-Bouldin %v on well-separated fit", db)
	}
}

package kmeansll

import (
	"math"
	"testing"
	"testing/quick"

	"kmeansll/internal/rng"
)

// makeBlobs returns n points drawn around k well-separated centers.
func makeBlobs(t testing.TB, n, d, k int, sep float64, seed uint64) [][]float64 {
	t.Helper()
	r := rng.New(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = sep * r.NormFloat64()
		}
	}
	points := make([][]float64, n)
	for i := range points {
		c := centers[i%k]
		p := make([]float64, d)
		for j := range p {
			p[j] = c[j] + r.NormFloat64()
		}
		points[i] = p
	}
	return points
}

func TestClusterBasic(t *testing.T) {
	points := makeBlobs(t, 600, 5, 6, 40, 1)
	m, err := Cluster(points, Config{K: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 6 {
		t.Fatalf("K() = %d", m.K())
	}
	if len(m.Assign) != 600 {
		t.Fatalf("Assign length %d", len(m.Assign))
	}
	if !m.Converged {
		t.Fatal("did not converge on easy blobs")
	}
	if m.Cost <= 0 || math.IsNaN(m.Cost) {
		t.Fatalf("cost %v", m.Cost)
	}
	if m.Cost > m.SeedCost {
		t.Fatalf("Lloyd worsened the seed: %v -> %v", m.SeedCost, m.Cost)
	}
}

func TestClusterAllInitMethods(t *testing.T) {
	points := makeBlobs(t, 500, 4, 5, 30, 3)
	for _, init := range []InitMethod{KMeansParallel, KMeansPlusPlus, RandomInit, PartitionInit} {
		m, err := Cluster(points, Config{K: 5, Init: init, Seed: 4})
		if err != nil {
			t.Fatalf("%v: %v", init, err)
		}
		if m.K() != 5 {
			t.Fatalf("%v: got %d centers", init, m.K())
		}
	}
}

func TestClusterErrors(t *testing.T) {
	points := makeBlobs(t, 10, 3, 2, 10, 5)
	cases := []struct {
		name string
		pts  [][]float64
		cfg  Config
	}{
		{"k=0", points, Config{K: 0}},
		{"no points", nil, Config{K: 2}},
		{"ragged", [][]float64{{1, 2}, {3}}, Config{K: 1}},
		{"zero-dim", [][]float64{{}}, Config{K: 1}},
		{"bad weights len", points, Config{K: 2, Weights: []float64{1}}},
		{"zero weight", points, Config{K: 2, Weights: make([]float64, 10)}},
		{"bad init", points, Config{K: 2, Init: InitMethod(99)}},
		{"nan point", [][]float64{{math.NaN(), 1}, {2, 3}}, Config{K: 1}},
	}
	for _, tc := range cases {
		if _, err := Cluster(tc.pts, tc.cfg); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

func TestPredictConsistentWithAssign(t *testing.T) {
	points := makeBlobs(t, 300, 4, 4, 50, 6)
	m, err := Cluster(points, Config{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if got := m.Predict(p); got != m.Assign[i] {
			t.Fatalf("Predict(points[%d]) = %d, Assign = %d", i, got, m.Assign[i])
		}
	}
}

func TestPredictDimPanics(t *testing.T) {
	points := makeBlobs(t, 50, 3, 2, 10, 8)
	m, _ := Cluster(points, Config{K: 2, Seed: 9})
	defer func() {
		if recover() == nil {
			t.Fatal("Predict with wrong dim did not panic")
		}
	}()
	m.Predict([]float64{1, 2})
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	points := makeBlobs(t, 400, 5, 4, 25, 10)
	a, err := Cluster(points, Config{K: 4, Seed: 11, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(points, Config{K: 4, Seed: 11, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Candidate selection is bit-identical across parallelism; centroid sums
	// reassociate across chunks, so allow last-ulp float drift.
	if a.Iters != b.Iters {
		t.Fatalf("parallelism changed iteration count: %d vs %d", a.Iters, b.Iters)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-12*(1+a.Cost) {
		t.Fatalf("parallelism changed result: cost %v vs %v", a.Cost, b.Cost)
	}
	for c := range a.Centers {
		for j := range a.Centers[c] {
			if math.Abs(a.Centers[c][j]-b.Centers[c][j]) > 1e-9*(1+math.Abs(a.Centers[c][j])) {
				t.Fatal("centers differ across parallelism")
			}
		}
	}
}

func TestWeightedClustering(t *testing.T) {
	// Two tight groups; the heavy group must get the center when k=1 is
	// forced to choose, i.e. center lands near the heavy group's mean.
	points := [][]float64{{0, 0}, {0.2, 0}, {10, 0}, {10.2, 0}}
	m, err := Cluster(points, Config{K: 1, Weights: []float64{100, 100, 1, 1}, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if m.Centers[0][0] > 1 {
		t.Fatalf("center %v ignores weights", m.Centers[0])
	}
}

func TestSeedCostOrdering(t *testing.T) {
	// On skewed blobby data, k-means|| and k-means++ seeds should both be
	// far better than random seeds (the paper's core claim), measured over a
	// few trials to dodge noise.
	points := makeBlobs(t, 1000, 8, 10, 60, 13)
	var ll, pp, rd float64
	for s := uint64(0); s < 5; s++ {
		a, _ := Cluster(points, Config{K: 10, Init: KMeansParallel, Seed: s, MaxIter: 1})
		b, _ := Cluster(points, Config{K: 10, Init: KMeansPlusPlus, Seed: s, MaxIter: 1})
		c, _ := Cluster(points, Config{K: 10, Init: RandomInit, Seed: s, MaxIter: 1})
		ll += a.SeedCost
		pp += b.SeedCost
		rd += c.SeedCost
	}
	if ll*2 > rd || pp*2 > rd {
		t.Fatalf("seed costs: kmeans|| %v, kmeans++ %v, random %v — D² seeding not winning", ll/5, pp/5, rd/5)
	}
}

func TestClusterBest(t *testing.T) {
	points := makeBlobs(t, 400, 4, 6, 15, 20)
	single, err := Cluster(points, Config{K: 6, Init: RandomInit, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	best, err := ClusterBest(points, Config{K: 6, Init: RandomInit, Seed: 21}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost > single.Cost {
		t.Fatalf("best-of-8 (%v) worse than its own first restart (%v)", best.Cost, single.Cost)
	}
	if _, err := ClusterBest(points, Config{K: 6}, 0); err == nil {
		t.Fatal("restarts=0 accepted")
	}
	if _, err := ClusterBest(points, Config{K: 0}, 2); err == nil {
		t.Fatal("bad config accepted")
	}
}

// Property: Cluster never returns more centers than K or than distinct
// points, and every assignment index is valid.
func TestClusterInvariantsProperty(t *testing.T) {
	f := func(s uint64) bool {
		r := rng.New(s)
		n := 10 + r.Intn(80)
		d := 1 + r.Intn(4)
		k := 1 + r.Intn(6)
		points := make([][]float64, n)
		for i := range points {
			p := make([]float64, d)
			for j := range p {
				p[j] = r.NormFloat64()
			}
			points[i] = p
		}
		m, err := Cluster(points, Config{K: k, Seed: s, MaxIter: 20})
		if err != nil {
			return false
		}
		if m.K() > k || m.K() < 1 {
			return false
		}
		for _, a := range m.Assign {
			if a < 0 || a >= m.K() {
				return false
			}
		}
		return m.Cost >= 0 && !math.IsNaN(m.Cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

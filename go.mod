module kmeansll

go 1.24

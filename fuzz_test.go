package kmeansll

import (
	"strings"
	"testing"
)

// FuzzLoadModel asserts the model loader never panics and only accepts
// structurally valid models.
func FuzzLoadModel(f *testing.F) {
	f.Add("kmeansll-model v1 k=1 dim=2\ncost=1 seedcost=2 iters=3 converged=true\n0.5,0.5\n")
	f.Add("kmeansll-model v1 k=2 dim=1\ncost=0 seedcost=0 iters=0 converged=false\n1\n2\n")
	f.Add("")
	f.Add("garbage")
	f.Add("kmeansll-model v1 k=9999999 dim=9999999\ncost=1 seedcost=1 iters=1 converged=true\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := LoadModel(strings.NewReader(input))
		if err != nil {
			return
		}
		if m.K() < 1 {
			t.Fatal("accepted model with no centers")
		}
		dim := len(m.Centers[0])
		if dim < 1 || dim != m.dim {
			t.Fatalf("accepted model with inconsistent dim %d vs %d", dim, m.dim)
		}
		for _, c := range m.Centers {
			if len(c) != dim {
				t.Fatal("accepted ragged centers")
			}
		}
		// A loadable model must be predictable.
		p := make([]float64, dim)
		if got := m.Predict(p); got < 0 || got >= m.K() {
			t.Fatalf("Predict out of range: %d", got)
		}
	})
}

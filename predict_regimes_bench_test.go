package kmeansll

import (
	"fmt"
	"testing"
)

// BenchmarkPredictRegimes compares PredictBatch's kd-tree descent against
// the blocked linear scan across (dim, k), the measurement behind
// predictTreeMinK/predictTreeMaxDim. The tree regime only pays off for very
// low-dimensional centers at large k; pruning decays rapidly with dimension.
func BenchmarkPredictRegimes(b *testing.B) {
	for _, dim := range []int{4, 16, 58} {
		for _, k := range []int{64, 256} {
			pts := makeBlobs(b, 20*k, dim, k, 2, uint64(dim+k))
			m, err := Cluster(pts, Config{K: k, Seed: 3, MaxIter: 5})
			if err != nil {
				b.Fatal(err)
			}
			queries := makeBlobs(b, 512, dim, k, 2, 9)
			out := make([]int, 512)
			for _, regime := range []string{"tree", "linear"} {
				b.Run(fmt.Sprintf("%s/d=%d/k=%d", regime, dim, k), func(b *testing.B) {
					m.predictBatch(queries[:1], out, 1, regime == "tree")
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						m.predictBatch(queries, out, 1, regime == "tree")
					}
				})
			}
		}
	}
}

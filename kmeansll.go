// Package kmeansll is a scalable k-means clustering library for Go,
// implementing "Scalable K-Means++" (Bahmani, Moseley, Vattani, Kumar,
// Vassilvitskii; PVLDB 5(7), 2012).
//
// The package front door is Cluster, which seeds centers with the paper's
// k-means|| initialization (or one of the baselines) and refines them with
// Lloyd's iteration:
//
//	model, err := kmeansll.Cluster(points, kmeansll.Config{K: 20})
//	if err != nil { ... }
//	cluster := model.Predict(point)
//
// k-means|| replaces the k sequential passes of k-means++ with ~5 passes
// that each sample O(k) candidate centers in parallel, then reclusters the
// candidates; it keeps k-means++'s quality guarantees (Theorem 1 of the
// paper) while being embarrassingly parallel. The lower-level packages under
// internal/ expose every building block — the initializers, exact
// accelerated Lloyd kernels, the Partition streaming baseline, a MapReduce
// engine and the paper's experiment harness — and are exercised by the
// benches in bench_test.go, one per table and figure of the paper.
package kmeansll

import (
	"errors"
	"fmt"

	"kmeansll/internal/core"
	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
	"kmeansll/internal/stream"
)

// InitMethod selects the center-seeding algorithm.
type InitMethod int

const (
	// KMeansParallel is k-means|| (the paper's Algorithm 2). Default.
	KMeansParallel InitMethod = iota
	// KMeansPlusPlus is the sequential k-means++ (Algorithm 1).
	KMeansPlusPlus
	// RandomInit picks k points uniformly at random.
	RandomInit
	// PartitionInit is the streaming baseline of Ailon et al. (§4.2.1).
	PartitionInit
)

func (m InitMethod) String() string {
	switch m {
	case KMeansParallel:
		return "kmeans||"
	case KMeansPlusPlus:
		return "kmeans++"
	case RandomInit:
		return "random"
	case PartitionInit:
		return "partition"
	default:
		return fmt.Sprintf("InitMethod(%d)", int(m))
	}
}

// Kernel selects the exact Lloyd assignment algorithm.
type Kernel int

const (
	// NaiveKernel scans every center per point (with distance bounds).
	NaiveKernel Kernel = iota
	// ElkanKernel uses Elkan's triangle-inequality bounds (O(n·k) memory).
	ElkanKernel
	// HamerlyKernel uses Hamerly's single lower bound (O(n) memory).
	HamerlyKernel
)

// Config controls Cluster. The zero value of every field except K selects a
// sensible default.
type Config struct {
	// K is the number of clusters. Required, must be ≥ 1.
	K int
	// Init selects the seeding algorithm (default k-means||).
	Init InitMethod
	// Oversampling is the k-means|| factor ℓ expressed as a multiple of K
	// (ℓ = Oversampling·K). 0 means 2, the paper's recommended setting.
	Oversampling float64
	// Rounds is the number of k-means|| sampling rounds; 0 means automatic
	// (5, or more when Oversampling·Rounds would not reach K).
	Rounds int
	// MaxIter caps Lloyd's iteration; 0 means run until convergence.
	MaxIter int
	// Kernel selects the Lloyd assignment implementation. All kernels are
	// exact (same fixed point); they differ only in speed/memory:
	// NaiveKernel (default) scans all centers, ElkanKernel keeps n×k bounds
	// (fastest for moderate k), HamerlyKernel keeps 2n bounds (best for
	// large k).
	Kernel Kernel
	// Weights, when non-nil, gives each point a positive weight (must match
	// len(points)).
	Weights []float64
	// Parallelism bounds worker goroutines; 0 means all CPUs.
	Parallelism int
	// Seed makes the run deterministic; runs with equal seeds and configs
	// return identical models regardless of Parallelism.
	Seed uint64
}

// Model is a fitted clustering.
type Model struct {
	// Centers holds the k final cluster centers.
	Centers [][]float64
	// Assign[i] is the cluster index of input point i.
	Assign []int
	// Cost is the k-means cost Σᵢ wᵢ·d²(xᵢ, Centers) of the fit.
	Cost float64
	// SeedCost is the cost right after initialization, before Lloyd.
	SeedCost float64
	// Iters is the number of Lloyd iterations run.
	Iters int
	// Converged reports whether Lloyd reached a fixed point before MaxIter.
	Converged bool

	dim int
}

// Cluster fits k centers to the given points. Points must be non-empty and
// rectangular; see Config for the knobs.
func Cluster(points [][]float64, cfg Config) (*Model, error) {
	if cfg.K < 1 {
		return nil, errors.New("kmeansll: Config.K must be ≥ 1")
	}
	if len(points) == 0 {
		return nil, errors.New("kmeansll: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("kmeansll: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeansll: point %d has %d dims, want %d", i, len(p), dim)
		}
	}
	if cfg.Weights != nil && len(cfg.Weights) != len(points) {
		return nil, fmt.Errorf("kmeansll: %d weights for %d points", len(cfg.Weights), len(points))
	}
	for i, w := range cfg.Weights {
		if !(w > 0) {
			return nil, fmt.Errorf("kmeansll: weight %d is %v, must be positive", i, w)
		}
	}

	ds := &geom.Dataset{X: geom.FromRows(points), Weight: cfg.Weights}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("kmeansll: %w", err)
	}

	var centers *geom.Matrix
	var seedCost float64
	switch cfg.Init {
	case KMeansParallel:
		over := cfg.Oversampling
		if over <= 0 {
			over = 2
		}
		var stats core.Stats
		centers, stats = core.Init(ds, core.Config{
			K: cfg.K, L: over * float64(cfg.K), Rounds: cfg.Rounds,
			Parallelism: cfg.Parallelism, Seed: cfg.Seed,
		})
		seedCost = stats.SeedCost
	case KMeansPlusPlus:
		centers = seed.KMeansPP(ds, cfg.K, rng.New(cfg.Seed), cfg.Parallelism)
		seedCost = lloyd.Cost(ds, centers, cfg.Parallelism)
	case RandomInit:
		centers = seed.Random(ds, cfg.K, rng.New(cfg.Seed))
		seedCost = lloyd.Cost(ds, centers, cfg.Parallelism)
	case PartitionInit:
		var stats stream.Stats
		centers, stats = stream.Partition(ds, stream.Config{
			K: cfg.K, Parallelism: cfg.Parallelism, Seed: cfg.Seed,
		})
		seedCost = stats.SeedCost
	default:
		return nil, fmt.Errorf("kmeansll: unknown InitMethod %d", cfg.Init)
	}

	var kernel lloyd.Method
	switch cfg.Kernel {
	case NaiveKernel:
		kernel = lloyd.Naive
	case ElkanKernel:
		kernel = lloyd.Elkan
	case HamerlyKernel:
		kernel = lloyd.Hamerly
	default:
		return nil, fmt.Errorf("kmeansll: unknown Kernel %d", cfg.Kernel)
	}
	res := lloyd.Run(ds, centers, lloyd.Config{
		MaxIter: cfg.MaxIter, Parallelism: cfg.Parallelism, Method: kernel,
	})

	out := &Model{
		Cost:      res.Cost,
		SeedCost:  seedCost,
		Iters:     res.Iters,
		Converged: res.Converged,
		dim:       dim,
	}
	out.Centers = make([][]float64, res.Centers.Rows)
	for c := range out.Centers {
		row := make([]float64, dim)
		copy(row, res.Centers.Row(c))
		out.Centers[c] = row
	}
	out.Assign = make([]int, len(res.Assign))
	for i, a := range res.Assign {
		out.Assign[i] = int(a)
	}
	return out, nil
}

// ClusterBest runs Cluster `restarts` times with derived seeds and returns
// the model with the lowest final cost. Restart seeds are cfg.Seed,
// cfg.Seed+1, ..., so results are reproducible. This is the classic remedy
// for Lloyd's local optima; §4.2 of the paper observes that even best-of-many
// Random seeding gains only marginally — a good D² seeding (the default
// k-means||) buys far more than extra restarts, which the
// `ablation_restarts` experiment reproduces.
func ClusterBest(points [][]float64, cfg Config, restarts int) (*Model, error) {
	if restarts < 1 {
		return nil, errors.New("kmeansll: restarts must be ≥ 1")
	}
	var best *Model
	for i := 0; i < restarts; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		m, err := Cluster(points, c)
		if err != nil {
			return nil, err
		}
		if best == nil || m.Cost < best.Cost {
			best = m
		}
	}
	return best, nil
}

// Predict returns the index of the center closest to the point.
func (m *Model) Predict(point []float64) int {
	if len(point) != m.dim {
		panic(fmt.Sprintf("kmeansll: Predict dim %d, model dim %d", len(point), m.dim))
	}
	best, bestD := 0, geom.SqDist(point, m.Centers[0])
	for c := 1; c < len(m.Centers); c++ {
		if d := geom.SqDist(point, m.Centers[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// K returns the number of centers in the model.
func (m *Model) K() int { return len(m.Centers) }

// Package kmeansll is a scalable k-means clustering library for Go,
// implementing "Scalable K-Means++" (Bahmani, Moseley, Vattani, Kumar,
// Vassilvitskii; PVLDB 5(7), 2012).
//
// The package front door is Cluster, which seeds centers with the paper's
// k-means|| initialization (or one of the baselines) and refines them with
// the configured Optimizer — exact Lloyd iteration by default, or
// mini-batch, trimmed and spherical k-means; any seeding composes with any
// optimizer over any data source:
//
//	model, err := kmeansll.Cluster(points, kmeansll.Config{K: 20})
//	if err != nil { ... }
//	cluster := model.Predict(point)
//
//	fast, err := kmeansll.Cluster(points, kmeansll.Config{
//		K: 20, Optimizer: kmeansll.MiniBatch{BatchSize: 512, Iters: 200},
//	})
//
// k-means|| replaces the k sequential passes of k-means++ with ~5 passes
// that each sample O(k) candidate centers in parallel, then reclusters the
// candidates; it keeps k-means++'s quality guarantees (Theorem 1 of the
// paper) while being embarrassingly parallel. The lower-level packages under
// internal/ expose every building block — the initializers, exact
// accelerated Lloyd kernels, the Partition streaming baseline, a MapReduce
// engine and the paper's experiment harness — and are exercised by the
// benches in bench_test.go, one per table and figure of the paper.
//
// Beyond the library there is a serving layer: cmd/kmserved (built on
// internal/server) exposes fitted models over HTTP with a versioned model
// registry, batch prediction (Model.PredictBatch), async fit jobs, and an
// online ingest endpoint backed by StreamingClusterer. See the README for a
// curl walk-through.
//
// # Performance
//
// Every distance-heavy loop — k-means|| round updates and Step 7 weighting,
// Lloyd assignment, and batch prediction — runs on the blocked pairwise-
// distance engine in internal/geom: squared distances are expanded as
// ‖x‖² + ‖c‖² − 2⟨x,c⟩ with cached norms and computed tile-wise so center
// tiles stay cache-resident. Small workloads fall back to the early-exit
// scan; the kd-tree handles Predict batches over many low-dimensional
// centers (k ≥ 256, dim ≤ 4), the only regime where its pruning beats the
// blocked scan. PredictBatchInto plus the engine's pooled scratch make
// steady-state serving allocation-free, and TransformBatch fills whole
// distance blocks with the same kernels. The expansion trades a little
// absolute precision for speed; for data far from the origin see
// UseExactDistances. `make bench` regenerates BENCH_init.json and
// BENCH_predict.json, which track ns/op and allocs/op for initialization,
// one Lloyd iteration and batch prediction under both kernels.
package kmeansll

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"kmeansll/internal/core"
	"kmeansll/internal/geom"
	"kmeansll/internal/kdtree"
	"kmeansll/internal/lloyd"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
	"kmeansll/internal/stream"
)

// InitMethod selects the center-seeding algorithm.
type InitMethod int

const (
	// KMeansParallel is k-means|| (the paper's Algorithm 2). Default.
	KMeansParallel InitMethod = iota
	// KMeansPlusPlus is the sequential k-means++ (Algorithm 1).
	KMeansPlusPlus
	// RandomInit picks k points uniformly at random.
	RandomInit
	// PartitionInit is the streaming baseline of Ailon et al. (§4.2.1).
	PartitionInit
)

func (m InitMethod) String() string {
	switch m {
	case KMeansParallel:
		return "kmeans||"
	case KMeansPlusPlus:
		return "kmeans++"
	case RandomInit:
		return "random"
	case PartitionInit:
		return "partition"
	default:
		return fmt.Sprintf("InitMethod(%d)", int(m))
	}
}

// Kernel selects the exact Lloyd assignment algorithm.
type Kernel int

const (
	// NaiveKernel scans every center per point (with distance bounds).
	NaiveKernel Kernel = iota
	// ElkanKernel uses Elkan's triangle-inequality bounds (O(n·k) memory).
	ElkanKernel
	// HamerlyKernel uses Hamerly's single lower bound (O(n) memory).
	HamerlyKernel
)

func (k Kernel) String() string {
	switch k {
	case NaiveKernel:
		return "naive"
	case ElkanKernel:
		return "elkan"
	case HamerlyKernel:
		return "hamerly"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Config controls Cluster. The zero value of every field except K selects a
// sensible default.
type Config struct {
	// K is the number of clusters. Required, must be ≥ 1.
	K int
	// Init selects the seeding algorithm (default k-means||).
	Init InitMethod
	// Oversampling is the k-means|| factor ℓ expressed as a multiple of K
	// (ℓ = Oversampling·K). 0 means 2, the paper's recommended setting.
	Oversampling float64
	// Rounds is the number of k-means|| sampling rounds; 0 means automatic
	// (5, or more when Oversampling·Rounds would not reach K).
	Rounds int
	// MaxIter caps Lloyd's iteration; 0 means run until convergence.
	MaxIter int
	// Kernel selects the Lloyd assignment implementation. All kernels are
	// exact (same fixed point); they differ only in speed/memory:
	// NaiveKernel (default) scans all centers, ElkanKernel keeps n×k bounds
	// (fastest for moderate k), HamerlyKernel keeps 2n bounds (best for
	// large k). Kernel is honored only when Optimizer is nil (it is
	// shorthand for Optimizer: Lloyd{Kernel: ...}).
	Kernel Kernel
	// Optimizer selects the refinement stage run after seeding: Lloyd
	// (default), MiniBatch, Trimmed or Spherical. Any Optimizer composes
	// with any Init and any data source; nil means Lloyd{Kernel: c.Kernel}.
	Optimizer Optimizer
	// Weights, when non-nil, gives each point a positive weight (must match
	// len(points)).
	Weights []float64
	// Parallelism bounds worker goroutines; 0 means all CPUs.
	Parallelism int
	// Seed makes the run deterministic; runs with equal seeds and configs
	// return identical models regardless of Parallelism.
	Seed uint64
	// Precision selects the distance arithmetic: Float64 (default, the
	// bit-reproducible reference) or Float32 (the single-precision blocked
	// engine, tolerance-based — see the Precision type and docs/kernels.md).
	Precision Precision
}

// Model is a fitted clustering.
type Model struct {
	// Centers holds the k final cluster centers.
	Centers [][]float64
	// Assign[i] is the cluster index of input point i.
	Assign []int
	// Cost is the k-means cost Σᵢ wᵢ·d²(xᵢ, Centers) of the fit.
	Cost float64
	// SeedCost is the cost right after initialization, before Lloyd.
	SeedCost float64
	// Iters is the number of refinement iterations run.
	Iters int
	// Converged reports whether the refinement reached a fixed point before
	// MaxIter. Always false for MiniBatch, which runs a fixed step budget.
	Converged bool
	// Outliers holds the point indices the Trimmed optimizer excluded in
	// its final iteration, sorted ascending; nil for every other optimizer.
	Outliers []int
	// TrimmedCost is the Trimmed optimizer's final cost over the kept
	// points only (Cost stays the all-points cost); 0 otherwise.
	TrimmedCost float64
	// Cohesion is the Spherical optimizer's objective Σ wᵢ·cos(xᵢ, c) —
	// the quantity it maximizes, where Cost is only the derived Euclidean
	// view; 0 for every other optimizer.
	Cohesion float64

	dim int

	// centerIndex lazily caches a kd-tree over Centers for PredictBatch.
	// Built at most once, so a served (immutable) model pays the build cost
	// on its first large-k batch only.
	centerIndex struct {
		once sync.Once
		tree *kdtree.Tree
	}

	// linearIndex lazily caches the contiguous center matrix and center
	// norms the blocked linear-scan regime of PredictBatch uses. Like the
	// kd-tree, it is built once, so Centers must not be mutated after the
	// first PredictBatch call.
	linearIndex struct {
		once  sync.Once
		mat   *geom.Matrix
		norms []float64
	}

	// linearIndex32 is linearIndex for the float32 linear-scan regime.
	linearIndex32 struct {
		once  sync.Once
		mat   *geom.Matrix32
		norms []float32
	}

	// precision selects PredictBatch's linear-scan arithmetic; see
	// SetPredictPrecision.
	precision Precision

	// precisionRequested/precisionEffective record what arithmetic the fit
	// was asked for and what it actually ran at; see PrecisionRequested and
	// PrecisionEffective.
	precisionRequested Precision
	precisionEffective Precision
}

// Cluster fits k centers to the given points. Points must be non-empty and
// rectangular; see Config for the knobs.
func Cluster(points [][]float64, cfg Config) (*Model, error) {
	if cfg.K < 1 {
		return nil, errors.New("kmeansll: Config.K must be ≥ 1")
	}
	if len(points) == 0 {
		return nil, errors.New("kmeansll: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("kmeansll: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeansll: point %d has %d dims, want %d", i, len(p), dim)
		}
	}
	if cfg.Weights != nil && len(cfg.Weights) != len(points) {
		return nil, fmt.Errorf("kmeansll: %d weights for %d points", len(cfg.Weights), len(points))
	}
	for i, w := range cfg.Weights {
		if !(w > 0) {
			return nil, fmt.Errorf("kmeansll: weight %d is %v, must be positive", i, w)
		}
	}

	ds := &geom.Dataset{X: geom.FromRows(points), Weight: cfg.Weights}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("kmeansll: %w", err)
	}
	return clusterDataset(ds, cfg)
}

// ClusterDataset is Cluster over an already-materialized geom.Dataset — the
// out-of-core entry point: an mmap-backed dataset opened from a .kmd file
// flows straight into the fit without ever being copied into [][]float64
// rows. Config.Weights is ignored; weights come from the dataset. Intended
// for in-repo consumers (kmserved path-based fit jobs, the CLI tools) —
// external importers cannot construct a geom.Dataset and should use Cluster.
func ClusterDataset(ds *geom.Dataset, cfg Config) (*Model, error) {
	if cfg.K < 1 {
		return nil, errors.New("kmeansll: Config.K must be ≥ 1")
	}
	if ds == nil || ds.N() == 0 {
		return nil, errors.New("kmeansll: no points")
	}
	if ds.Dim() == 0 {
		return nil, errors.New("kmeansll: zero-dimensional points")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("kmeansll: %w", err)
	}
	return clusterDataset(ds, cfg)
}

// clusterDataset runs the seeding + refinement pipeline over a validated
// dataset: lower the optimizer, let it prepare the dataset (Spherical
// normalizes a private copy — seeding must see the same geometry the
// refinement optimizes), seed, refine.
func clusterDataset(ds *geom.Dataset, cfg Config) (*Model, error) {
	if cfg.Precision == Float32 {
		return clusterDataset32(geom.ToDataset32(ds), cfg)
	}
	opt, err := cfg.OptimizerOrDefault().lower()
	if err != nil {
		return nil, err
	}
	ds, err = opt.Prepare(ds)
	if err != nil {
		return nil, fmt.Errorf("kmeansll: %w", err)
	}
	dim := ds.Dim()
	var centers *geom.Matrix
	var seedCost float64
	switch cfg.Init {
	case KMeansParallel:
		over := cfg.Oversampling
		if over <= 0 {
			over = 2
		}
		var stats core.Stats
		centers, stats = core.Init(ds, core.Config{
			K: cfg.K, L: over * float64(cfg.K), Rounds: cfg.Rounds,
			Parallelism: cfg.Parallelism, Seed: cfg.Seed,
		})
		seedCost = stats.SeedCost
	case KMeansPlusPlus:
		centers = seed.KMeansPP(ds, cfg.K, rng.New(cfg.Seed), cfg.Parallelism)
		seedCost = lloyd.Cost(ds, centers, cfg.Parallelism)
	case RandomInit:
		centers = seed.Random(ds, cfg.K, rng.New(cfg.Seed))
		seedCost = lloyd.Cost(ds, centers, cfg.Parallelism)
	case PartitionInit:
		var stats stream.Stats
		centers, stats = stream.Partition(ds, stream.Config{
			K: cfg.K, Parallelism: cfg.Parallelism, Seed: cfg.Seed,
		})
		seedCost = stats.SeedCost
	default:
		return nil, fmt.Errorf("kmeansll: unknown InitMethod %d", cfg.Init)
	}

	res := opt.Refine(ds, centers, lloyd.Config{
		MaxIter: cfg.MaxIter, Parallelism: cfg.Parallelism,
	}, cfg.Seed)

	out := &Model{
		Cost:        res.Cost,
		SeedCost:    seedCost,
		Iters:       res.Iters,
		Converged:   res.Converged,
		Outliers:    res.Outliers,
		TrimmedCost: res.TrimmedCost,
		Cohesion:    res.Cohesion,
		dim:         dim,
	}
	out.Centers = make([][]float64, res.Centers.Rows)
	for c := range out.Centers {
		row := make([]float64, dim)
		copy(row, res.Centers.Row(c))
		out.Centers[c] = row
	}
	out.Assign = make([]int, len(res.Assign))
	for i, a := range res.Assign {
		out.Assign[i] = int(a)
	}
	return out, nil
}

// ClusterBest runs Cluster `restarts` times with derived seeds and returns
// the model with the lowest final cost. Restart seeds are cfg.Seed,
// cfg.Seed+1, ..., so results are reproducible. This is the classic remedy
// for Lloyd's local optima; §4.2 of the paper observes that even best-of-many
// Random seeding gains only marginally — a good D² seeding (the default
// k-means||) buys far more than extra restarts, which the
// `ablation_restarts` experiment reproduces.
func ClusterBest(points [][]float64, cfg Config, restarts int) (*Model, error) {
	if restarts < 1 {
		return nil, errors.New("kmeansll: restarts must be ≥ 1")
	}
	var best *Model
	for i := 0; i < restarts; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		m, err := Cluster(points, c)
		if err != nil {
			return nil, err
		}
		if best == nil || m.Cost < best.Cost {
			best = m
		}
	}
	return best, nil
}

// NewModel builds a servable model directly from a set of centers, e.g. one
// computed elsewhere and uploaded to the kmserved registry. The centers must
// be non-empty, rectangular and finite. The returned model has no training
// statistics (Cost, Iters and friends are zero) but fully supports Predict,
// PredictBatch, Transform and Save.
func NewModel(centers [][]float64) (*Model, error) {
	if len(centers) == 0 {
		return nil, errors.New("kmeansll: NewModel needs at least one center")
	}
	dim := len(centers[0])
	if dim == 0 {
		return nil, errors.New("kmeansll: zero-dimensional centers")
	}
	m := &Model{Centers: make([][]float64, len(centers)), dim: dim}
	for i, c := range centers {
		if len(c) != dim {
			return nil, fmt.Errorf("kmeansll: center %d has %d dims, want %d", i, len(c), dim)
		}
		for j, v := range c {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("kmeansll: center %d col %d is non-finite", i, j)
			}
		}
		row := make([]float64, dim)
		copy(row, c)
		m.Centers[i] = row
	}
	return m, nil
}

// Predict returns the index of the center closest to the point.
//
// Predict panics when the point's dimensionality does not match the model's
// (as do Transform and PredictBatch): a dimension mismatch is a programming
// error, not a data condition. Callers handling untrusted input should check
// len(point) against Dim first.
func (m *Model) Predict(point []float64) int {
	if len(point) != m.dim {
		panic(fmt.Sprintf("kmeansll: Predict dim %d, model dim %d", len(point), m.dim))
	}
	best, bestD := 0, geom.SqDist(point, m.Centers[0])
	for c := 1; c < len(m.Centers); c++ {
		if d := geom.SqDistBound(point, m.Centers[c], bestD); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// PredictBatch switches from the (blocked) linear center scan to a kd-tree
// over the centers only when the centers are numerous AND low-dimensional.
// Measured on linux/amd64 (BenchmarkPredictRegimes, both overlapping and
// well-separated mixtures): the blocked scan beats the tree descent at every
// (k ≤ 256, dim ≥ 4) grid point — tree pruning decays rapidly with
// dimension — and the tree only trends ahead for dim ≤ 4 around k ≳ 256.
const (
	predictTreeMinK   = 256
	predictTreeMaxDim = 4
)

// PredictBatch assigns every point to its nearest center and returns one
// cluster index per point, in order. The batch is processed by up to
// `parallelism` goroutines (≤ 0 means all CPUs). For models with many
// low-dimensional centers (k ≥ 256, dim ≤ 4) the nearest-center search runs
// against a kd-tree built once over the centers (internal/kdtree) instead
// of scanning; everywhere else the scan runs through the blocked
// pairwise-distance engine (internal/geom) with the center matrix and norms
// cached on the model. Both caches are built once, so Centers must not be mutated after
// the first PredictBatch call. Ties between equidistant centers may resolve
// differently between regimes; every answer is an exact nearest center.
//
// Like Predict, it panics if any point's dimensionality does not match the
// model's.
func (m *Model) PredictBatch(points [][]float64, parallelism int) []int {
	out := make([]int, len(points))
	m.PredictBatchInto(points, out, parallelism)
	return out
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice
// (len(out) ≥ len(points)), for serving loops that reuse buffers: with a
// warm scratch pool the steady state allocates nothing per batch.
func (m *Model) PredictBatchInto(points [][]float64, out []int, parallelism int) {
	for i, p := range points {
		if len(p) != m.dim {
			panic(fmt.Sprintf("kmeansll: PredictBatch point %d dim %d, model dim %d", i, len(p), m.dim))
		}
	}
	if len(out) < len(points) {
		panic(fmt.Sprintf("kmeansll: PredictBatchInto out len %d for %d points", len(out), len(points)))
	}
	useTree := len(m.Centers) >= predictTreeMinK && m.dim <= predictTreeMaxDim
	m.predictBatch(points, out, parallelism, useTree)
}

// predictBatch is PredictBatchInto with the kd-tree decision forced, so
// tests can exercise every regime at any k.
func (m *Model) predictBatch(points [][]float64, out []int, parallelism int, useTree bool) {
	if len(points) == 0 {
		return
	}
	if useTree {
		tree := m.centerTree()
		geom.ParallelFor(len(points), parallelism, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				c, _ := tree.Nearest(points[i])
				out[i] = c
			}
		})
		return
	}
	if m.precision == Float32 {
		if c32, n32 := m.linearScanIndex32(); geom.UseBlocked(c32.Rows, c32.Cols) {
			if geom.ChunkCount(len(points), parallelism) == 1 {
				sc := geom.GetScratch32()
				geom.NearestBlockedRows32(points, c32, n32, out, sc)
				sc.Release()
				return
			}
			geom.ParallelFor(len(points), parallelism, func(_, lo, hi int) {
				sc := geom.GetScratch32()
				geom.NearestBlockedRows32(points[lo:hi], c32, n32, out[lo:hi], sc)
				sc.Release()
			})
			return
		}
		// Below the blocked crossover the float64 scalar scan is both exact
		// and as fast; fall through to it.
	}
	centers, norms := m.linearScanIndex()
	if geom.UseBlocked(centers.Rows, centers.Cols) {
		if geom.ChunkCount(len(points), parallelism) == 1 {
			// Serial fast path: no ParallelFor closure, so a warm scratch
			// pool makes the whole call allocation-free.
			sc := geom.GetScratch()
			geom.NearestBlockedRows(points, centers, norms, out, sc)
			sc.Release()
			return
		}
		geom.ParallelFor(len(points), parallelism, func(_, lo, hi int) {
			sc := geom.GetScratch()
			geom.NearestBlockedRows(points[lo:hi], centers, norms, out[lo:hi], sc)
			sc.Release()
		})
		return
	}
	geom.ParallelFor(len(points), parallelism, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c, _ := geom.Nearest(points[i], centers)
			out[i] = c
		}
	})
}

// linearScanIndex returns the cached contiguous center matrix and center
// norms for the linear-scan regime, building them on first use.
func (m *Model) linearScanIndex() (*geom.Matrix, []float64) {
	m.linearIndex.once.Do(func() {
		m.linearIndex.mat = geom.FromRows(m.Centers)
		m.linearIndex.norms = geom.RowSqNorms(m.linearIndex.mat, nil)
	})
	return m.linearIndex.mat, m.linearIndex.norms
}

// centerTree returns the cached kd-tree over the centers, building it on
// first use. Concurrent callers share one build via sync.Once.
func (m *Model) centerTree() *kdtree.Tree {
	m.centerIndex.once.Do(func() {
		m.centerIndex.tree = kdtree.Build(geom.NewDataset(geom.FromRows(m.Centers)), 0)
	})
	return m.centerIndex.tree
}

// UseExactDistances(true) globally disables the norm-expansion distance
// kernels, restoring plain (a−b)² arithmetic in every inner loop. The
// expansion ‖x‖²+‖c‖²−2⟨x,c⟩ carries absolute error proportional to the
// norms, so for data whose coordinates sit far from the origin (|x| ≫ 1e6
// with unit-scale cluster separations) D² sampling weights and assignments
// can be swamped by rounding noise; centering the data is the better fix,
// but this switch is the drop-in one. UseExactDistances(false) restores the
// measured-crossover default. The setting is process-global and meant to be
// flipped once at startup, not per call.
func UseExactDistances(on bool) {
	if on {
		geom.SetKernel(geom.KernelNaive)
	} else {
		geom.SetKernel(geom.KernelAuto)
	}
}

// K returns the number of centers in the model.
func (m *Model) K() int { return len(m.Centers) }

// Dim returns the dimensionality of the model's centers. Callers validating
// external input check it before Predict/Transform, which panic on mismatch.
func (m *Model) Dim() int { return m.dim }

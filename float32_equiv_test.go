package kmeansll

import (
	"math"
	"testing"

	"kmeansll/internal/geom"
	"kmeansll/internal/rng"
)

// This file is the float32 tolerance equivalence suite: the executable form
// of the precision contract in docs/kernels.md. Every case compares the
// Float32 pipeline against the Float64 reference on float32-representable
// data (so both see the same input values) and requires
//
//   - ≥ 99.9% assignment agreement, and
//   - relative cost error ≤ 1e-5,
//
// across dimensions 1–128, weighted rows, and ragged point/center counts
// that leave partial tiles in every blocked kernel. The float64 path's own
// bit-exactness tests (equiv_test.go, internal/dsio/equiv_test.go) are
// untouched by the float32 feature — this suite is tolerance-based by
// design.

// f32Case builds a clustered, float32-representable dataset. Returned
// points are exact widenings of their float32 narrowings.
func f32Case(t testing.TB, n, dim, clusters int, weighted bool, seedVal uint64) ([][]float64, []float64) {
	t.Helper()
	r := rng.New(seedVal)
	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = 10 * r.NormFloat64()
		}
	}
	points := make([][]float64, n)
	for i := range points {
		c := centers[r.Intn(clusters)]
		p := make([]float64, dim)
		for j := range p {
			p[j] = float64(float32(c[j] + r.NormFloat64()))
		}
		points[i] = p
	}
	var weights []float64
	if weighted {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 0.25 + r.Float64()
		}
	}
	return points, weights
}

// agreement returns the fraction of equal entries.
func agreement(a, b []int) float64 {
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestFloat32FitEquivalence fuzzes fit shapes across the contract's domain.
// RandomInit draws identical center indices in both precisions, so the two
// pipelines refine from the same starting centers and the comparison
// isolates arithmetic, not sampling luck.
func TestFloat32FitEquivalence(t *testing.T) {
	shapes := rng.New(0xF32)
	for trial := 0; trial < 8; trial++ {
		dim := 1 + shapes.Intn(128)  // contract domain: dims 1–128
		n := 301 + shapes.Intn(1500) // odd sizes: ragged point tiles
		k := 2 + shapes.Intn(31)     // ragged center tiles
		weighted := shapes.Intn(2) == 1
		points, weights := f32Case(t, n, dim, k, weighted, uint64(trial)+1)

		cfg := Config{
			K: k, Init: RandomInit, MaxIter: 25,
			Weights: weights, Seed: uint64(trial) + 101,
		}
		ref, err := Cluster(points, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg32 := cfg
		cfg32.Precision = Float32
		got, err := Cluster(points, cfg32)
		if err != nil {
			t.Fatal(err)
		}

		if got.PredictPrecision() != Float32 {
			t.Fatalf("trial %d: float32 fit did not mark the model", trial)
		}
		if rel := relErr(got.Cost, ref.Cost); rel > 1e-5 {
			t.Fatalf("trial %d (n=%d dim=%d k=%d weighted=%v): cost rel err %v > 1e-5 (%v vs %v)",
				trial, n, dim, k, weighted, rel, got.Cost, ref.Cost)
		}
		if rel := relErr(got.SeedCost, ref.SeedCost); rel > 1e-5 {
			t.Fatalf("trial %d: seed cost rel err %v > 1e-5", trial, rel)
		}
		// The ≥99.9% contract bounds a single assignment pass; a full fit
		// iterates, so a near-tie flipped in an early iteration can move
		// centers and carry a handful of neighbors with it. 0.995 is the
		// fit-level form of the contract — the per-pass bound itself is
		// pinned by TestFloat32PredictEquivalence and the kernel-tier matrix
		// test in internal/geom.
		if agr := agreement(got.Assign, ref.Assign); agr < 0.995 {
			t.Fatalf("trial %d (n=%d dim=%d k=%d): assignment agreement %.5f < 0.995",
				trial, n, dim, k, agr)
		}
	}
}

// TestFloat32PredictEquivalence compares the float32 linear-scan regime of
// PredictBatch against the float64 one over the contract's dimension range,
// including batch sizes that leave ragged tiles.
func TestFloat32PredictEquivalence(t *testing.T) {
	for _, dim := range []int{1, 2, 7, 16, 33, 58, 128} {
		k := 37 // ragged: 2 full center tiles of 16 + 5
		points, _ := f32Case(t, 1003, dim, k, false, uint64(dim))
		centers := make([][]float64, k)
		r := rng.New(uint64(dim) * 7)
		for c := range centers {
			centers[c] = make([]float64, dim)
			for j := range centers[c] {
				centers[c][j] = float64(float32(10 * r.NormFloat64()))
			}
		}
		ref, err := NewModel(centers)
		if err != nil {
			t.Fatal(err)
		}
		m32, err := NewModel(centers)
		if err != nil {
			t.Fatal(err)
		}
		m32.SetPredictPrecision(Float32)

		want := ref.PredictBatch(points, 0)
		got := m32.PredictBatch(points, 0)
		if agr := agreement(got, want); agr < 0.999 {
			t.Fatalf("dim=%d: predict agreement %.5f < 0.999", dim, agr)
		}
		// Disagreements must be near-ties, not wrong answers.
		for i := range got {
			if got[i] != want[i] {
				dGot := geom.SqDist(points[i], centers[got[i]])
				dWant := geom.SqDist(points[i], centers[want[i]])
				scale := geom.SqNorm(points[i]) + 1
				if math.Abs(dGot-dWant) > 1e-4*scale {
					t.Fatalf("dim=%d point %d: float32 picked center %d (d2=%v) over %d (d2=%v)",
						dim, i, got[i], dGot, want[i], dWant)
				}
			}
		}
	}
}

// TestFloat32ClusterDataset32 checks the zero-copy float32 entry point
// produces the same model as the widening entry with Precision=Float32.
func TestFloat32ClusterDataset32(t *testing.T) {
	points, weights := f32Case(t, 700, 24, 6, true, 77)
	ds := &geom.Dataset{X: geom.FromRows(points), Weight: weights}
	ds32 := geom.ToDataset32(ds)

	cfg := Config{K: 6, Init: KMeansParallel, MaxIter: 15, Seed: 9, Precision: Float32}
	a, err := ClusterDataset32(ds32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgW := cfg
	cfgW.Weights = weights
	b, err := Cluster(points, cfgW)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Iters != b.Iters {
		t.Fatalf("ClusterDataset32 and Cluster(Precision=Float32) diverged: cost %v vs %v, iters %d vs %d",
			a.Cost, b.Cost, a.Iters, b.Iters)
	}
	for c := range a.Centers {
		for j := range a.Centers[c] {
			if a.Centers[c][j] != b.Centers[c][j] {
				t.Fatalf("centers diverged at (%d,%d)", c, j)
			}
		}
	}
}

// TestFloat32FallbackConfigs checks that configurations outside the float32
// fast path still fit correctly (on the widened float64 pipeline) instead of
// failing — the documented fallback contract — and that the widening is
// observable through PrecisionRequested/PrecisionEffective.
func TestFloat32FallbackConfigs(t *testing.T) {
	points, _ := f32Case(t, 400, 8, 4, false, 5)
	for _, cfg := range []Config{
		{K: 4, Init: PartitionInit, Seed: 3, Precision: Float32, MaxIter: 10},
		{K: 4, Optimizer: Trimmed{Fraction: 0.05}, Seed: 3, Precision: Float32, MaxIter: 10},
		{K: 4, Optimizer: Spherical{}, Seed: 3, Precision: Float32, MaxIter: 10},
	} {
		m, err := Cluster(points, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if m.K() != 4 {
			t.Fatalf("%+v: got %d centers", cfg, m.K())
		}
		if m.PrecisionRequested() != Float32 || m.PrecisionEffective() != Float64 {
			t.Fatalf("%+v: requested %v / effective %v, want f32 / f64",
				cfg, m.PrecisionRequested(), m.PrecisionEffective())
		}
		// The fallback runs in float64 and must match the plain float64 fit
		// bit for bit.
		c64 := cfg
		c64.Precision = Float64
		ref, err := Cluster(points, c64)
		if err != nil {
			t.Fatal(err)
		}
		if m.Cost != ref.Cost {
			t.Fatalf("%+v: fallback cost %v != float64 cost %v", cfg, m.Cost, ref.Cost)
		}
	}
}

// TestFloat32AccelConfigs checks that the configurations PR 9 moved onto the
// float32 fast path — Elkan/Hamerly Lloyd kernels and MiniBatch — actually
// stay there (PrecisionEffective == Float32) and meet the tolerance contract
// against their float64 counterparts.
func TestFloat32AccelConfigs(t *testing.T) {
	points, _ := f32Case(t, 600, 12, 5, false, 9)
	for _, cfg := range []Config{
		{K: 5, Init: RandomInit, Kernel: ElkanKernel, Seed: 7, Precision: Float32, MaxIter: 25},
		{K: 5, Init: RandomInit, Kernel: HamerlyKernel, Seed: 7, Precision: Float32, MaxIter: 25},
		{K: 5, Init: RandomInit, Optimizer: MiniBatch{BatchSize: 64, Iters: 30}, Seed: 7, Precision: Float32},
	} {
		m, err := Cluster(points, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if m.PrecisionRequested() != Float32 || m.PrecisionEffective() != Float32 {
			t.Fatalf("%+v: requested %v / effective %v, want f32 / f32",
				cfg, m.PrecisionRequested(), m.PrecisionEffective())
		}
		if m.PredictPrecision() != Float32 {
			t.Fatalf("%+v: fitted model predicts at %v, want f32", cfg, m.PredictPrecision())
		}
		c64 := cfg
		c64.Precision = Float64
		ref, err := Cluster(points, c64)
		if err != nil {
			t.Fatal(err)
		}
		// MiniBatch compares under a looser bound: its sampled steps amplify
		// the per-step rounding differences beyond the exact-kernel contract.
		tol := 1e-5
		if _, ok := cfg.Optimizer.(MiniBatch); ok {
			tol = 1e-3
		}
		if rel := relErr(m.Cost, ref.Cost); rel > tol {
			t.Fatalf("%+v: f32 cost %v vs f64 cost %v (rel %v)", cfg, m.Cost, ref.Cost, rel)
		}
		if frac := agreement(m.Assign, ref.Assign); frac < 0.99 {
			t.Fatalf("%+v: only %.4f assignment agreement", cfg, frac)
		}
	}
}

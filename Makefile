GO ?= go

.PHONY: build test vet race serve bench bench-check lint kmlint doclint clean

build:
	$(GO) build ./...

# bench regenerates BENCH_init.json / BENCH_predict.json / BENCH_load.json /
# BENCH_optimizers.json / BENCH_f32.json / BENCH_serve.json: the hot-path
# perf suite (Init, Lloyd iteration, steady-state PredictBatch) measured
# under the naive-scan baseline and the blocked distance engine, the same
# three paths under the float32 engine (cmd/kmbench/perf32.go), plus the
# dataset load paths (CSV parse vs mmap .kmd open), the refinement variants
# (full Lloyd vs mini-batch), and the serving ceiling (an in-process
# kmserved swept to saturation; see cmd/kmbench/serve.go).
bench: build
	$(GO) run ./cmd/kmbench -json
	$(GO) run ./cmd/kmbench -serve

# bench-check is the CI bench-regression gate, runnable locally: regenerate
# the suite into a scratch dir and compare against the committed baselines
# (fails on >25% ns/op regressions, new allocations on zero-alloc paths, or
# a serving-ceiling max-QPS collapse).
bench-check: build
	$(GO) run ./cmd/kmbench -json -out /tmp/kmeansll-bench
	$(GO) run ./cmd/kmbench -serve -quick -out /tmp/kmeansll-bench
	$(GO) run ./cmd/kmbench -compare -baseline . -current /tmp/kmeansll-bench

vet:
	$(GO) vet ./...

# kmlint runs the repo's own static-analysis suite (cmd/kmlint): the
# determinism, mmapwrite, precision, atomicfields, tiergate and doccomment
# analyzers, one per documented correctness contract. See
# docs/static-analysis.md for what each enforces and how to suppress a
# finding at a blessed site.
kmlint:
	$(GO) run ./cmd/kmlint ./...

# lint is the full static gate CI's lint job runs locally: formatting,
# go vet, and the kmlint analyzer suite.
lint: vet kmlint
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi

# doclint survives as an alias for the retired cmd/doclint: the doc-comment
# contract is now kmlint's doccomment analyzer, widened from the three
# kernel/format packages to all of internal/... .
doclint:
	$(GO) run ./cmd/kmlint -only doccomment ./...

test: lint
	$(GO) test -race ./...

race: test

serve: build
	$(GO) run ./cmd/kmserved -addr :8080

clean:
	$(GO) clean ./...

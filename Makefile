GO ?= go

.PHONY: build test vet race serve bench bench-check clean

build:
	$(GO) build ./...

# bench regenerates BENCH_init.json / BENCH_predict.json / BENCH_load.json /
# BENCH_optimizers.json / BENCH_serve.json: the hot-path perf suite (Init,
# Lloyd iteration, steady-state PredictBatch) measured under the naive-scan
# baseline and the blocked distance engine, plus the dataset load paths (CSV
# parse vs mmap .kmd open), the refinement variants (full Lloyd vs
# mini-batch), and the serving ceiling (an in-process kmserved swept to
# saturation; see cmd/kmbench/serve.go).
bench: build
	$(GO) run ./cmd/kmbench -json
	$(GO) run ./cmd/kmbench -serve

# bench-check is the CI bench-regression gate, runnable locally: regenerate
# the suite into a scratch dir and compare against the committed baselines
# (fails on >25% ns/op regressions, new allocations on zero-alloc paths, or
# a serving-ceiling max-QPS collapse).
bench-check: build
	$(GO) run ./cmd/kmbench -json -out /tmp/kmeansll-bench
	$(GO) run ./cmd/kmbench -serve -quick -out /tmp/kmeansll-bench
	$(GO) run ./cmd/kmbench -compare -baseline . -current /tmp/kmeansll-bench

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

race: test

serve: build
	$(GO) run ./cmd/kmserved -addr :8080

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: build test vet race serve clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

race: test

serve: build
	$(GO) run ./cmd/kmserved -addr :8080

clean:
	$(GO) clean ./...

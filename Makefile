GO ?= go

.PHONY: build test vet race serve bench clean

build:
	$(GO) build ./...

# bench regenerates BENCH_init.json / BENCH_predict.json: the hot-path perf
# suite (Init, Lloyd iteration, steady-state PredictBatch) measured under the
# naive-scan baseline and the blocked distance engine.
bench: build
	$(GO) run ./cmd/kmbench -json

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

race: test

serve: build
	$(GO) run ./cmd/kmserved -addr :8080

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: build test vet race serve bench bench-check doclint clean

build:
	$(GO) build ./...

# bench regenerates BENCH_init.json / BENCH_predict.json / BENCH_load.json /
# BENCH_optimizers.json / BENCH_f32.json / BENCH_serve.json: the hot-path
# perf suite (Init, Lloyd iteration, steady-state PredictBatch) measured
# under the naive-scan baseline and the blocked distance engine, the same
# three paths under the float32 engine (cmd/kmbench/perf32.go), plus the
# dataset load paths (CSV parse vs mmap .kmd open), the refinement variants
# (full Lloyd vs mini-batch), and the serving ceiling (an in-process
# kmserved swept to saturation; see cmd/kmbench/serve.go).
bench: build
	$(GO) run ./cmd/kmbench -json
	$(GO) run ./cmd/kmbench -serve

# bench-check is the CI bench-regression gate, runnable locally: regenerate
# the suite into a scratch dir and compare against the committed baselines
# (fails on >25% ns/op regressions, new allocations on zero-alloc paths, or
# a serving-ceiling max-QPS collapse).
bench-check: build
	$(GO) run ./cmd/kmbench -json -out /tmp/kmeansll-bench
	$(GO) run ./cmd/kmbench -serve -quick -out /tmp/kmeansll-bench
	$(GO) run ./cmd/kmbench -compare -baseline . -current /tmp/kmeansll-bench

vet:
	$(GO) vet ./...

# doclint enforces the documentation contract on the kernel/format packages:
# every exported identifier in internal/geom, internal/dsio and internal/lloyd
# must carry a doc comment (see docs/kernels.md and docs/kmd-format.md).
doclint:
	$(GO) run ./cmd/doclint ./internal/geom ./internal/dsio ./internal/lloyd

test: vet doclint
	$(GO) test -race ./...

race: test

serve: build
	$(GO) run ./cmd/kmserved -addr :8080

clean:
	$(GO) clean ./...

package kmeansll

import (
	"errors"
	"fmt"

	"kmeansll/internal/core"
	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
	"kmeansll/internal/rng"
	"kmeansll/internal/seed"
)

// Precision selects the arithmetic of the fit's distance-heavy passes.
//
// Float64 is the reference: bit-identical results for a given seed, the
// contract every equivalence test in this repo pins. Float32 streams points
// through the single-precision blocked engine (internal/geom's *32 kernels)
// — half the memory bandwidth and, on amd64, SIMD dot products — while
// keeping every cross-point accumulation (center sums, weights, costs, D²
// sampling) in float64. Float32 results are not bit-comparable to Float64;
// they follow the tolerance contract in docs/kernels.md (≥99.9% assignment
// agreement and ~1e-6 relative cost error on unit-scale data up to 128
// dims). Seeding under Float32 draws from the same distributions but may
// make different sampling choices where float32 rounding perturbs a D²
// weight.
type Precision int

const (
	// Float64 runs every pass in double precision (default).
	Float64 Precision = iota
	// Float32 runs distance passes in single precision where supported:
	// k-means||, k-means++ and random seeding, Lloyd refinement under every
	// kernel (naive, Elkan, Hamerly), the MiniBatch optimizer, and batch
	// prediction. The remaining unsupported combinations — Partition seeding
	// and the Trimmed/Spherical optimizers — transparently fall back to the
	// Float64 pipeline on widened data; Model.PrecisionEffective reports
	// which arithmetic actually ran.
	Float32
)

func (p Precision) String() string {
	switch p {
	case Float64:
		return "f64"
	case Float32:
		return "f32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision parses the CLI/JSON form of a Precision: "f64"/"float64"
// (or empty, meaning the default) and "f32"/"float32".
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64", "float64":
		return Float64, nil
	case "f32", "float32":
		return Float32, nil
	default:
		return Float64, fmt.Errorf("kmeansll: unknown precision %q (want f64 or f32)", s)
	}
}

// ClusterDataset32 is ClusterDataset over float32 points — the zero-copy
// entry for float32 .kmd files: a Dataset32 opened with dsio.Reader.Dataset32
// flows into the fit without widening the payload. Config.Precision is
// implied (the data already is float32); configurations outside the float32
// fast path fall back to the Float64 pipeline on a widened copy, exactly as
// Config.Precision = Float32 does. Config.Weights is ignored; weights come
// from the dataset.
func ClusterDataset32(ds *geom.Dataset32, cfg Config) (*Model, error) {
	if cfg.K < 1 {
		return nil, errors.New("kmeansll: Config.K must be ≥ 1")
	}
	if ds == nil || ds.N() == 0 {
		return nil, errors.New("kmeansll: no points")
	}
	if ds.Dim() == 0 {
		return nil, errors.New("kmeansll: zero-dimensional points")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("kmeansll: %w", err)
	}
	return clusterDataset32(ds, cfg)
}

// float32Supported reports whether the configuration stays on the float32
// fast path: the seedings and the refinements that have *32 engine
// implementations — every Lloyd kernel and MiniBatch, under k-means||,
// k-means++ or random seeding. The remaining denylist is Partition seeding
// (the streaming baseline has no float32 engine) and the Trimmed/Spherical
// optimizers (their per-iteration exclusion/normalization passes only exist
// in double precision); those widen and run the Float64 pipeline, which
// Model.PrecisionEffective surfaces.
func float32Supported(cfg Config) bool {
	switch cfg.OptimizerOrDefault().(type) {
	case Lloyd, MiniBatch:
	default:
		return false
	}
	switch cfg.Init {
	case KMeansParallel, KMeansPlusPlus, RandomInit:
		return true
	default:
		return false
	}
}

// clusterDataset32 runs the float32 seeding + refinement pipeline, or falls
// back to the float64 one (on widened data) when the configuration needs
// passes that only exist in double precision.
func clusterDataset32(ds *geom.Dataset32, cfg Config) (*Model, error) {
	if !float32Supported(cfg) {
		c := cfg
		c.Precision = Float64 // widened fallback must not loop back here
		m, err := clusterDataset(ds.ToDataset(), c)
		if m != nil {
			m.precisionRequested = Float32 // effective stays Float64
		}
		return m, err
	}
	opt, err := cfg.OptimizerOrDefault().lower()
	if err != nil {
		return nil, err
	}
	dim := ds.Dim()
	var centers *geom.Matrix
	var seedCost float64
	switch cfg.Init {
	case KMeansParallel:
		over := cfg.Oversampling
		if over <= 0 {
			over = 2
		}
		var stats core.Stats
		centers, stats = core.Init32(ds, core.Config{
			K: cfg.K, L: over * float64(cfg.K), Rounds: cfg.Rounds,
			Parallelism: cfg.Parallelism, Seed: cfg.Seed,
		})
		seedCost = stats.SeedCost
	case KMeansPlusPlus:
		centers = seed.KMeansPP32(ds, cfg.K, rng.New(cfg.Seed), cfg.Parallelism)
		seedCost = lloyd.Cost32(ds, geom.ToMatrix32(centers), cfg.Parallelism)
	default: // RandomInit, by float32Supported
		centers = seed.Random32(ds, cfg.K, rng.New(cfg.Seed))
		seedCost = lloyd.Cost32(ds, geom.ToMatrix32(centers), cfg.Parallelism)
	}

	res := opt.Refine32(ds, centers, lloyd.Config{
		MaxIter: cfg.MaxIter, Parallelism: cfg.Parallelism,
	}, cfg.Seed)

	out := &Model{
		Cost:               res.Cost,
		SeedCost:           seedCost,
		Iters:              res.Iters,
		Converged:          res.Converged,
		dim:                dim,
		precision:          Float32,
		precisionRequested: Float32,
		precisionEffective: Float32,
	}
	out.Centers = make([][]float64, res.Centers.Rows)
	for c := range out.Centers {
		row := make([]float64, dim)
		copy(row, res.Centers.Row(c))
		out.Centers[c] = row
	}
	out.Assign = make([]int, len(res.Assign))
	for i, a := range res.Assign {
		out.Assign[i] = int(a)
	}
	return out, nil
}

// SetPredictPrecision selects the arithmetic PredictBatch uses: Float32
// routes the blocked linear-scan regime through the single-precision engine
// (models fitted via the float32 path default to it). Call before the first
// PredictBatch — the per-precision center caches are built once — and not
// concurrently with prediction. Predict (single point) and the kd-tree
// regime always use float64; answers there are exact either way.
func (m *Model) SetPredictPrecision(p Precision) { m.precision = p }

// PredictPrecision reports the precision PredictBatch's linear-scan regime
// runs at.
func (m *Model) PredictPrecision() Precision { return m.precision }

// MarkFitPrecision records that the model came out of a fit pipeline that ran
// entirely at precision p: it sets the requested and effective fit precisions
// and the PredictBatch default together. Engine frontends that assemble a
// Model from raw fit results — the distributed coordinator's Model helper,
// CLI drivers — use it; models from Cluster/ClusterDataset are already
// marked.
func (m *Model) MarkFitPrecision(p Precision) {
	m.precision = p
	m.precisionRequested = p
	m.precisionEffective = p
}

// PrecisionRequested reports the precision the fit was asked for
// (Config.Precision, or Float32 for ClusterDataset32). Float64 for models
// built outside the fit pipeline (NewModel, Load).
func (m *Model) PrecisionRequested() Precision { return m.precisionRequested }

// PrecisionEffective reports the precision the fit actually ran at. It
// differs from PrecisionRequested exactly when a Float32 request hit the
// float64-only denylist (Partition seeding, Trimmed/Spherical optimizers)
// and the fit transparently widened — the observable form of that fallback.
func (m *Model) PrecisionEffective() Precision { return m.precisionEffective }

// linearScanIndex32 returns the cached float32 center matrix and norms for
// the single-precision linear-scan regime, building them on first use.
func (m *Model) linearScanIndex32() (*geom.Matrix32, []float32) {
	m.linearIndex32.once.Do(func() {
		m.linearIndex32.mat = geom.ToMatrix32(geom.FromRows(m.Centers))
		m.linearIndex32.norms = geom.RowSqNorms32(m.linearIndex32.mat, nil)
	})
	return m.linearIndex32.mat, m.linearIndex32.norms
}

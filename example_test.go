package kmeansll_test

// Godoc examples for the public API. Each runs as a test.

import (
	"fmt"

	"kmeansll"
)

// grid3 returns three tight groups of four points each.
func grid3() [][]float64 {
	var pts [][]float64
	for _, base := range [][2]float64{{0, 0}, {100, 0}, {0, 100}} {
		for _, d := range [][2]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
			pts = append(pts, []float64{base[0] + d[0], base[1] + d[1]})
		}
	}
	return pts
}

func ExampleCluster() {
	model, err := kmeansll.Cluster(grid3(), kmeansll.Config{K: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", model.K())
	fmt.Println("converged:", model.Converged)
	// Points from the same tight group always share a cluster.
	fmt.Println("same group:", model.Assign[0] == model.Assign[1])
	fmt.Println("different groups:", model.Assign[0] != model.Assign[4])
	// Output:
	// clusters: 3
	// converged: true
	// same group: true
	// different groups: true
}

func ExampleModel_Predict() {
	model, err := kmeansll.Cluster(grid3(), kmeansll.Config{K: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	// A new point near the (100, 0) group lands with its training neighbors.
	got := model.Predict([]float64{99, 1})
	fmt.Println(got == model.Assign[4])
	// Output:
	// true
}

func ExampleNewStreamingClusterer() {
	sc, err := kmeansll.NewStreamingClusterer(kmeansll.StreamingConfig{
		K: 3, Dim: 2, CoresetSize: 8, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range grid3() {
		if err := sc.Add(p); err != nil {
			panic(err)
		}
	}
	model, err := sc.Model()
	if err != nil {
		panic(err)
	}
	fmt.Println("consumed:", sc.N())
	fmt.Println("clusters:", model.K())
	// Output:
	// consumed: 12
	// clusters: 3
}

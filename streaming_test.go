package kmeansll

import (
	"math"
	"testing"
)

func TestStreamingClustererBasic(t *testing.T) {
	points := makeBlobs(t, 2000, 4, 5, 40, 1)
	sc, err := NewStreamingClusterer(StreamingConfig{K: 5, Dim: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if err := sc.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if sc.N() != 2000 {
		t.Fatalf("N = %d", sc.N())
	}
	m, err := sc.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 5 {
		t.Fatalf("K = %d", m.K())
	}
	// Streamed model should be within a modest factor of the batch fit.
	batch, err := Cluster(points, Config{K: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	streamOnFull := 0.0
	for _, p := range points {
		best := math.Inf(1)
		for _, c := range m.Centers {
			d := 0.0
			for j := range p {
				dv := p[j] - c[j]
				d += dv * dv
			}
			if d < best {
				best = d
			}
		}
		streamOnFull += best
	}
	if streamOnFull > 2*batch.Cost {
		t.Fatalf("streaming cost on full data %v ≫ batch %v", streamOnFull, batch.Cost)
	}
}

func TestStreamingClustererErrors(t *testing.T) {
	if _, err := NewStreamingClusterer(StreamingConfig{K: 0, Dim: 2}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewStreamingClusterer(StreamingConfig{K: 2, Dim: 0}); err == nil {
		t.Fatal("Dim=0 accepted")
	}
	sc, _ := NewStreamingClusterer(StreamingConfig{K: 2, Dim: 3})
	if err := sc.Add([]float64{1, 2}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := sc.Model(); err == nil {
		t.Fatal("Model on empty stream accepted")
	}
}

func TestStreamingClustererIncremental(t *testing.T) {
	sc, _ := NewStreamingClusterer(StreamingConfig{K: 2, Dim: 2, CoresetSize: 32, Seed: 4})
	points := makeBlobs(t, 500, 2, 2, 60, 5)
	for _, p := range points[:250] {
		sc.Add(p)
	}
	m1, err := sc.Model()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points[250:] {
		sc.Add(p)
	}
	m2, err := sc.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m1.K() != 2 || m2.K() != 2 {
		t.Fatalf("K drifted: %d %d", m1.K(), m2.K())
	}
}

func TestTransform(t *testing.T) {
	points := makeBlobs(t, 200, 3, 3, 30, 6)
	m, err := Cluster(points, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points[:20] {
		d := m.Transform(p)
		if len(d) != 3 {
			t.Fatalf("Transform length %d", len(d))
		}
		// argmin of Transform must equal Predict.
		best, bestD := 0, d[0]
		for c := 1; c < len(d); c++ {
			if d[c] < bestD {
				best, bestD = c, d[c]
			}
		}
		if best != m.Predict(p) {
			t.Fatal("Transform argmin disagrees with Predict")
		}
	}
}

func TestKernelSelection(t *testing.T) {
	points := makeBlobs(t, 600, 5, 6, 25, 8)
	var costs []float64
	for _, k := range []Kernel{NaiveKernel, ElkanKernel, HamerlyKernel} {
		m, err := Cluster(points, Config{K: 6, Seed: 9, Kernel: k})
		if err != nil {
			t.Fatalf("kernel %d: %v", k, err)
		}
		costs = append(costs, m.Cost)
	}
	for i := 1; i < len(costs); i++ {
		if math.Abs(costs[i]-costs[0]) > 1e-6*(1+costs[0]) {
			t.Fatalf("kernel %d cost %v != naive %v", i, costs[i], costs[0])
		}
	}
	if _, err := Cluster(points, Config{K: 2, Kernel: Kernel(42)}); err == nil {
		t.Fatal("bad kernel accepted")
	}
}

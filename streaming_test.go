package kmeansll

import (
	"math"
	"testing"
)

func TestStreamingClustererBasic(t *testing.T) {
	points := makeBlobs(t, 2000, 4, 5, 40, 1)
	sc, err := NewStreamingClusterer(StreamingConfig{K: 5, Dim: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if err := sc.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if sc.N() != 2000 {
		t.Fatalf("N = %d", sc.N())
	}
	m, err := sc.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 5 {
		t.Fatalf("K = %d", m.K())
	}
	// Streamed model should be within a modest factor of the batch fit.
	batch, err := Cluster(points, Config{K: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	streamOnFull := 0.0
	for _, p := range points {
		best := math.Inf(1)
		for _, c := range m.Centers {
			d := 0.0
			for j := range p {
				dv := p[j] - c[j]
				d += dv * dv
			}
			if d < best {
				best = d
			}
		}
		streamOnFull += best
	}
	if streamOnFull > 2*batch.Cost {
		t.Fatalf("streaming cost on full data %v ≫ batch %v", streamOnFull, batch.Cost)
	}
}

// Model must report what the refinement actually did, not hard-code
// success: with MaxIter=1 on a coreset that cannot possibly stabilize in
// one Lloyd iteration, Converged must come back false (and flip to true
// once the budget is generous), SeedCost must exceed the refined Cost, and
// Iters must reflect the budget. This is the regression test for the old
// Stream.Cluster path that discarded the lloyd.Result and published
// Converged: true / SeedCost == Cost unconditionally.
func TestStreamingModelReportsRealConvergence(t *testing.T) {
	points := makeBlobs(t, 3000, 6, 12, 30, 7)
	build := func(maxIter int) *Model {
		sc, err := NewStreamingClusterer(StreamingConfig{K: 12, Dim: 6, MaxIter: maxIter, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range points {
			if err := sc.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		m, err := sc.Model()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	hard := build(1)
	if hard.Converged {
		t.Fatal("MaxIter=1 on a hard coreset reported Converged=true")
	}
	if hard.Iters != 1 {
		t.Fatalf("MaxIter=1 ran %d iterations", hard.Iters)
	}
	easy := build(0) // default budget: plenty for a 240-point coreset
	if !easy.Converged {
		t.Fatal("default budget did not converge on the coreset")
	}
	if easy.Iters <= 1 {
		t.Fatalf("default budget converged suspiciously fast: %d iterations", easy.Iters)
	}
	if !(easy.SeedCost > easy.Cost) {
		t.Fatalf("SeedCost %v not above refined Cost %v — still hard-coded?", easy.SeedCost, easy.Cost)
	}
}

// The streaming entry point composes with optimizers like every other data
// source: a mini-batch refit must report its fixed budget (Converged=false)
// and a trimmed refit must converge like Lloyd.
func TestStreamingClustererOptimizers(t *testing.T) {
	points := makeBlobs(t, 1500, 4, 6, 30, 9)
	fit := func(opt Optimizer) *Model {
		sc, err := NewStreamingClusterer(StreamingConfig{K: 6, Dim: 4, Optimizer: opt, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range points {
			if err := sc.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		m, err := sc.Model()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	lloydM := fit(nil)
	mb := fit(MiniBatch{BatchSize: 32, Iters: 40})
	if mb.Converged {
		t.Fatal("mini-batch refit reported Converged=true")
	}
	if mb.Iters != 40 {
		t.Fatalf("mini-batch refit ran %d iterations, want 40", mb.Iters)
	}
	// Both refine the same coreset; mini-batch should land in the same cost
	// regime as full Lloyd on well-separated blobs.
	if mb.Cost > 3*lloydM.Cost {
		t.Fatalf("mini-batch coreset cost %v ≫ lloyd %v", mb.Cost, lloydM.Cost)
	}
	tr := fit(Trimmed{Fraction: 0.05})
	if tr.K() != 6 {
		t.Fatalf("trimmed refit K = %d", tr.K())
	}
	if tr.Outliers != nil {
		t.Fatal("streaming model leaked coreset-indexed Outliers")
	}
}

func TestStreamingClustererErrors(t *testing.T) {
	if _, err := NewStreamingClusterer(StreamingConfig{K: 0, Dim: 2}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewStreamingClusterer(StreamingConfig{K: 2, Dim: 0}); err == nil {
		t.Fatal("Dim=0 accepted")
	}
	sc, _ := NewStreamingClusterer(StreamingConfig{K: 2, Dim: 3})
	if err := sc.Add([]float64{1, 2}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := sc.Model(); err == nil {
		t.Fatal("Model on empty stream accepted")
	}
}

func TestStreamingClustererIncremental(t *testing.T) {
	sc, _ := NewStreamingClusterer(StreamingConfig{K: 2, Dim: 2, CoresetSize: 32, Seed: 4})
	points := makeBlobs(t, 500, 2, 2, 60, 5)
	for _, p := range points[:250] {
		sc.Add(p)
	}
	m1, err := sc.Model()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points[250:] {
		sc.Add(p)
	}
	m2, err := sc.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m1.K() != 2 || m2.K() != 2 {
		t.Fatalf("K drifted: %d %d", m1.K(), m2.K())
	}
}

func TestTransform(t *testing.T) {
	points := makeBlobs(t, 200, 3, 3, 30, 6)
	m, err := Cluster(points, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points[:20] {
		d := m.Transform(p)
		if len(d) != 3 {
			t.Fatalf("Transform length %d", len(d))
		}
		// argmin of Transform must equal Predict.
		best, bestD := 0, d[0]
		for c := 1; c < len(d); c++ {
			if d[c] < bestD {
				best, bestD = c, d[c]
			}
		}
		if best != m.Predict(p) {
			t.Fatal("Transform argmin disagrees with Predict")
		}
	}
}

func TestKernelSelection(t *testing.T) {
	points := makeBlobs(t, 600, 5, 6, 25, 8)
	var costs []float64
	for _, k := range []Kernel{NaiveKernel, ElkanKernel, HamerlyKernel} {
		m, err := Cluster(points, Config{K: 6, Seed: 9, Kernel: k})
		if err != nil {
			t.Fatalf("kernel %d: %v", k, err)
		}
		costs = append(costs, m.Cost)
	}
	for i := 1; i < len(costs); i++ {
		if math.Abs(costs[i]-costs[0]) > 1e-6*(1+costs[0]) {
			t.Fatalf("kernel %d cost %v != naive %v", i, costs[i], costs[0])
		}
	}
	if _, err := Cluster(points, Config{K: 2, Kernel: Kernel(42)}); err == nil {
		t.Fatal("bad kernel accepted")
	}
}

package kmeansll

import (
	"errors"
	"fmt"

	"kmeansll/internal/coreset"
	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
)

// StreamingClusterer consumes points one at a time in bounded memory and can
// produce a k-clustering of everything seen so far at any moment. It is
// backed by the StreamKM++ merge-and-reduce coreset (internal/coreset): the
// memory footprint is O(CoresetSize·log(n/CoresetSize)) points regardless of
// stream length.
//
//	sc, _ := kmeansll.NewStreamingClusterer(kmeansll.StreamingConfig{K: 50, Dim: 42})
//	for p := range feed { sc.Add(p) }
//	model, _ := sc.Model()
type StreamingClusterer struct {
	k      int
	stream *coreset.Stream
}

// StreamingConfig sizes a StreamingClusterer.
type StreamingConfig struct {
	// K is the number of clusters a Model() call produces. Required.
	K int
	// Dim is the point dimensionality. Required.
	Dim int
	// CoresetSize is the summary size m; 0 means 20·K (a good default per
	// the StreamKM++ paper).
	CoresetSize int
	// Seed makes the run deterministic.
	Seed uint64
}

// NewStreamingClusterer validates the config and returns a ready clusterer.
func NewStreamingClusterer(cfg StreamingConfig) (*StreamingClusterer, error) {
	if cfg.K < 1 {
		return nil, errors.New("kmeansll: StreamingConfig.K must be ≥ 1")
	}
	if cfg.Dim < 1 {
		return nil, errors.New("kmeansll: StreamingConfig.Dim must be ≥ 1")
	}
	m := cfg.CoresetSize
	if m <= 0 {
		m = 20 * cfg.K
	}
	if m < 2 {
		m = 2
	}
	return &StreamingClusterer{
		k:      cfg.K,
		stream: coreset.NewStream(m, cfg.Dim, cfg.Seed),
	}, nil
}

// Add consumes one point. It returns an error (instead of panicking) on a
// dimension mismatch, since streaming inputs are often externally sourced.
func (s *StreamingClusterer) Add(p []float64) error {
	if len(p) != s.stream.Dim() {
		return fmt.Errorf("kmeansll: point dim %d, stream dim %d", len(p), s.stream.Dim())
	}
	s.stream.Add(p)
	return nil
}

// N returns the number of points consumed so far.
func (s *StreamingClusterer) N() int { return s.stream.N() }

// Model clusters the current coreset into k centers. The returned Model has
// no Assign (the stream is not retained); Predict works as usual. Cost is
// the weighted cost on the coreset — an estimate of the cost on the full
// history.
func (s *StreamingClusterer) Model() (*Model, error) {
	if s.stream.N() == 0 {
		return nil, errors.New("kmeansll: no points consumed")
	}
	centers := s.stream.Cluster(s.k)
	cs := s.stream.Coreset()
	cost := lloyd.Cost(cs, centers, 0)
	m := &Model{Cost: cost, SeedCost: cost, Converged: true, dim: centers.Cols}
	m.Centers = matrixRows(centers)
	return m, nil
}

func matrixRows(x *geom.Matrix) [][]float64 {
	out := make([][]float64, x.Rows)
	for i := range out {
		row := make([]float64, x.Cols)
		copy(row, x.Row(i))
		out[i] = row
	}
	return out
}

// Transform returns the squared Euclidean distance from the point to every
// center — the feature-transform view of a fitted model (one column per
// cluster), useful for downstream anomaly scoring.
//
// Like Predict, it panics if the point's dimensionality does not match the
// model's; callers handling untrusted input should check len(point) against
// Dim first.
func (m *Model) Transform(point []float64) []float64 {
	if len(point) != m.dim {
		panic(fmt.Sprintf("kmeansll: Transform dim %d, model dim %d", len(point), m.dim))
	}
	out := make([]float64, len(m.Centers))
	for c, center := range m.Centers {
		out[c] = geom.SqDist(point, center)
	}
	return out
}

package kmeansll

import (
	"errors"
	"fmt"

	"kmeansll/internal/coreset"
	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
)

// StreamingClusterer consumes points one at a time in bounded memory and can
// produce a k-clustering of everything seen so far at any moment. It is
// backed by the StreamKM++ merge-and-reduce coreset (internal/coreset): the
// memory footprint is O(CoresetSize·log(n/CoresetSize)) points regardless of
// stream length.
//
//	sc, _ := kmeansll.NewStreamingClusterer(kmeansll.StreamingConfig{K: 50, Dim: 42})
//	for p := range feed { sc.Add(p) }
//	model, _ := sc.Model()
type StreamingClusterer struct {
	k       int
	maxIter int
	opt     lloyd.Opt
	optName string
	stream  *coreset.Stream
}

// StreamingConfig sizes a StreamingClusterer.
type StreamingConfig struct {
	// K is the number of clusters a Model() call produces. Required.
	K int
	// Dim is the point dimensionality. Required.
	Dim int
	// CoresetSize is the summary size m; 0 means 20·K (a good default per
	// the StreamKM++ paper).
	CoresetSize int
	// MaxIter caps the refinement iterations of each Model() call;
	// 0 means 100 (the StreamKM++ endgame's usual budget).
	MaxIter int
	// Optimizer selects the refinement variant clustering the coreset;
	// nil means Lloyd{}. Same composability as Config.Optimizer — the
	// coreset is just another data source.
	Optimizer Optimizer
	// Seed makes the run deterministic.
	Seed uint64
}

// NewStreamingClusterer validates the config and returns a ready clusterer.
func NewStreamingClusterer(cfg StreamingConfig) (*StreamingClusterer, error) {
	if cfg.K < 1 {
		return nil, errors.New("kmeansll: StreamingConfig.K must be ≥ 1")
	}
	if cfg.Dim < 1 {
		return nil, errors.New("kmeansll: StreamingConfig.Dim must be ≥ 1")
	}
	if cfg.MaxIter < 0 {
		return nil, errors.New("kmeansll: StreamingConfig.MaxIter must be ≥ 0")
	}
	m := cfg.CoresetSize
	if m <= 0 {
		m = 20 * cfg.K
	}
	if m < 2 {
		m = 2
	}
	optimizer := cfg.Optimizer
	if optimizer == nil {
		optimizer = Lloyd{}
	}
	opt, err := optimizer.lower()
	if err != nil {
		return nil, err
	}
	return &StreamingClusterer{
		k:       cfg.K,
		maxIter: cfg.MaxIter,
		opt:     opt,
		optName: optimizer.String(),
		stream:  coreset.NewStream(m, cfg.Dim, cfg.Seed),
	}, nil
}

// Add consumes one point. It returns an error (instead of panicking) on a
// dimension mismatch, since streaming inputs are often externally sourced.
func (s *StreamingClusterer) Add(p []float64) error {
	if len(p) != s.stream.Dim() {
		return fmt.Errorf("kmeansll: point dim %d, stream dim %d", len(p), s.stream.Dim())
	}
	s.stream.Add(p)
	return nil
}

// N returns the number of points consumed so far.
func (s *StreamingClusterer) N() int { return s.stream.N() }

// Buffered returns the number of weighted points the bounded coreset summary
// currently holds in memory — the clusterer's actual footprint, which stays
// O(CoresetSize·log(N/CoresetSize)) however large N grows.
func (s *StreamingClusterer) Buffered() int { return s.stream.Buffered() }

// Model clusters the current coreset into k centers with the configured
// optimizer. The returned Model has no Assign and no Outliers (the stream is
// not retained, and coreset-representative indices would be meaningless to
// the caller); Predict works as usual. Cost is the weighted cost on the
// coreset — an estimate of the cost on the full history — SeedCost the
// coreset cost right after seeding, and Iters/Converged report what the
// refinement actually did (a MaxIter too small for the coreset really does
// surface as Converged=false).
func (s *StreamingClusterer) Model() (*Model, error) {
	if s.stream.N() == 0 {
		return nil, errors.New("kmeansll: no points consumed")
	}
	res, err := s.stream.ClusterOpt(s.k, s.opt, lloyd.Config{MaxIter: s.maxIter})
	if err != nil {
		return nil, fmt.Errorf("kmeansll: %w", err)
	}
	m := &Model{
		Cost:      res.Cost,
		SeedCost:  res.SeedCost,
		Iters:     res.Iters,
		Converged: res.Converged,
		Cohesion:  res.Cohesion,
		dim:       res.Centers.Cols,
	}
	m.Centers = matrixRows(res.Centers)
	return m, nil
}

// Optimizer returns the canonical spec string of the configured refinement
// variant (e.g. "lloyd:naive"), for serving layers that record model
// provenance.
func (s *StreamingClusterer) Optimizer() string { return s.optName }

func matrixRows(x *geom.Matrix) [][]float64 {
	out := make([][]float64, x.Rows)
	for i := range out {
		row := make([]float64, x.Cols)
		copy(row, x.Row(i))
		out[i] = row
	}
	return out
}

// Transform returns the squared Euclidean distance from the point to every
// center — the feature-transform view of a fitted model (one column per
// cluster), useful for downstream anomaly scoring.
//
// Like Predict, it panics if the point's dimensionality does not match the
// model's; callers handling untrusted input should check len(point) against
// Dim first.
func (m *Model) Transform(point []float64) []float64 {
	if len(point) != m.dim {
		panic(fmt.Sprintf("kmeansll: Transform dim %d, model dim %d", len(point), m.dim))
	}
	out := make([]float64, len(m.Centers))
	for c, center := range m.Centers {
		out[c] = geom.SqDist(point, center)
	}
	return out
}

// TransformBatch returns Transform for every point: out[i][c] is the squared
// distance from points[i] to center c. The whole result is backed by one
// flat allocation (row i aliases it), and the distances are computed with
// the blocked norm-expansion kernels against the model's cached center
// norms, so large batches run at the same throughput as PredictBatch. The
// batch is processed by up to `parallelism` goroutines (≤ 0 means all CPUs).
//
// Like Transform, it panics if any point's dimensionality does not match
// the model's.
func (m *Model) TransformBatch(points [][]float64, parallelism int) [][]float64 {
	for i, p := range points {
		if len(p) != m.dim {
			panic(fmt.Sprintf("kmeansll: TransformBatch point %d dim %d, model dim %d", i, len(p), m.dim))
		}
	}
	k := len(m.Centers)
	flat := make([]float64, len(points)*k)
	out := make([][]float64, len(points))
	for i := range out {
		out[i] = flat[i*k : (i+1)*k]
	}
	if len(points) == 0 {
		return out
	}
	centers, norms := m.linearScanIndex()
	if !geom.UseBlocked(k, m.dim) {
		// Small models — or an UseExactDistances pin — keep Transform's
		// exact (a−b)² arithmetic.
		geom.ParallelFor(len(points), parallelism, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				row := out[i]
				for c := 0; c < k; c++ {
					row[c] = geom.SqDist(points[i], centers.Row(c))
				}
			}
		})
		return out
	}
	geom.ParallelFor(len(points), parallelism, func(_, lo, hi int) {
		sc := geom.GetScratch()
		geom.PairwiseSqDistRows(points[lo:hi], centers, norms, flat[lo*k:hi*k], sc)
		sc.Release()
	})
	return out
}

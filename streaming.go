package kmeansll

import (
	"errors"
	"fmt"

	"kmeansll/internal/coreset"
	"kmeansll/internal/geom"
	"kmeansll/internal/lloyd"
)

// StreamingClusterer consumes points one at a time in bounded memory and can
// produce a k-clustering of everything seen so far at any moment. It is
// backed by the StreamKM++ merge-and-reduce coreset (internal/coreset): the
// memory footprint is O(CoresetSize·log(n/CoresetSize)) points regardless of
// stream length.
//
//	sc, _ := kmeansll.NewStreamingClusterer(kmeansll.StreamingConfig{K: 50, Dim: 42})
//	for p := range feed { sc.Add(p) }
//	model, _ := sc.Model()
type StreamingClusterer struct {
	k      int
	stream *coreset.Stream
}

// StreamingConfig sizes a StreamingClusterer.
type StreamingConfig struct {
	// K is the number of clusters a Model() call produces. Required.
	K int
	// Dim is the point dimensionality. Required.
	Dim int
	// CoresetSize is the summary size m; 0 means 20·K (a good default per
	// the StreamKM++ paper).
	CoresetSize int
	// Seed makes the run deterministic.
	Seed uint64
}

// NewStreamingClusterer validates the config and returns a ready clusterer.
func NewStreamingClusterer(cfg StreamingConfig) (*StreamingClusterer, error) {
	if cfg.K < 1 {
		return nil, errors.New("kmeansll: StreamingConfig.K must be ≥ 1")
	}
	if cfg.Dim < 1 {
		return nil, errors.New("kmeansll: StreamingConfig.Dim must be ≥ 1")
	}
	m := cfg.CoresetSize
	if m <= 0 {
		m = 20 * cfg.K
	}
	if m < 2 {
		m = 2
	}
	return &StreamingClusterer{
		k:      cfg.K,
		stream: coreset.NewStream(m, cfg.Dim, cfg.Seed),
	}, nil
}

// Add consumes one point. It returns an error (instead of panicking) on a
// dimension mismatch, since streaming inputs are often externally sourced.
func (s *StreamingClusterer) Add(p []float64) error {
	if len(p) != s.stream.Dim() {
		return fmt.Errorf("kmeansll: point dim %d, stream dim %d", len(p), s.stream.Dim())
	}
	s.stream.Add(p)
	return nil
}

// N returns the number of points consumed so far.
func (s *StreamingClusterer) N() int { return s.stream.N() }

// Model clusters the current coreset into k centers. The returned Model has
// no Assign (the stream is not retained); Predict works as usual. Cost is
// the weighted cost on the coreset — an estimate of the cost on the full
// history.
func (s *StreamingClusterer) Model() (*Model, error) {
	if s.stream.N() == 0 {
		return nil, errors.New("kmeansll: no points consumed")
	}
	centers := s.stream.Cluster(s.k)
	cs := s.stream.Coreset()
	cost := lloyd.Cost(cs, centers, 0)
	m := &Model{Cost: cost, SeedCost: cost, Converged: true, dim: centers.Cols}
	m.Centers = matrixRows(centers)
	return m, nil
}

func matrixRows(x *geom.Matrix) [][]float64 {
	out := make([][]float64, x.Rows)
	for i := range out {
		row := make([]float64, x.Cols)
		copy(row, x.Row(i))
		out[i] = row
	}
	return out
}

// Transform returns the squared Euclidean distance from the point to every
// center — the feature-transform view of a fitted model (one column per
// cluster), useful for downstream anomaly scoring.
//
// Like Predict, it panics if the point's dimensionality does not match the
// model's; callers handling untrusted input should check len(point) against
// Dim first.
func (m *Model) Transform(point []float64) []float64 {
	if len(point) != m.dim {
		panic(fmt.Sprintf("kmeansll: Transform dim %d, model dim %d", len(point), m.dim))
	}
	out := make([]float64, len(m.Centers))
	for c, center := range m.Centers {
		out[c] = geom.SqDist(point, center)
	}
	return out
}

// TransformBatch returns Transform for every point: out[i][c] is the squared
// distance from points[i] to center c. The whole result is backed by one
// flat allocation (row i aliases it), and the distances are computed with
// the blocked norm-expansion kernels against the model's cached center
// norms, so large batches run at the same throughput as PredictBatch. The
// batch is processed by up to `parallelism` goroutines (≤ 0 means all CPUs).
//
// Like Transform, it panics if any point's dimensionality does not match
// the model's.
func (m *Model) TransformBatch(points [][]float64, parallelism int) [][]float64 {
	for i, p := range points {
		if len(p) != m.dim {
			panic(fmt.Sprintf("kmeansll: TransformBatch point %d dim %d, model dim %d", i, len(p), m.dim))
		}
	}
	k := len(m.Centers)
	flat := make([]float64, len(points)*k)
	out := make([][]float64, len(points))
	for i := range out {
		out[i] = flat[i*k : (i+1)*k]
	}
	if len(points) == 0 {
		return out
	}
	centers, norms := m.linearScanIndex()
	if !geom.UseBlocked(k, m.dim) {
		// Small models — or an UseExactDistances pin — keep Transform's
		// exact (a−b)² arithmetic.
		geom.ParallelFor(len(points), parallelism, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				row := out[i]
				for c := 0; c < k; c++ {
					row[c] = geom.SqDist(points[i], centers.Row(c))
				}
			}
		})
		return out
	}
	geom.ParallelFor(len(points), parallelism, func(_, lo, hi int) {
		sc := geom.GetScratch()
		geom.PairwiseSqDistRows(points[lo:hi], centers, norms, flat[lo*k:hi*k], sc)
		sc.Release()
	})
	return out
}

package kmeansll

import (
	"bytes"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	points := makeBlobs(t, 200, 4, 3, 30, 1)
	m, err := Cluster(points, Config{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != m.K() || back.Cost != m.Cost || back.SeedCost != m.SeedCost ||
		back.Iters != m.Iters || back.Converged != m.Converged {
		t.Fatalf("stats lost in round trip: %+v vs %+v", back, m)
	}
	for c := range m.Centers {
		for j := range m.Centers[c] {
			if back.Centers[c][j] != m.Centers[c][j] {
				t.Fatalf("center (%d,%d) lost precision: %v vs %v",
					c, j, back.Centers[c][j], m.Centers[c][j])
			}
		}
	}
	// Loaded model predicts identically.
	for _, p := range points[:50] {
		if back.Predict(p) != m.Predict(p) {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	points := makeBlobs(t, 100, 3, 2, 20, 3)
	m, err := Cluster(points, Config{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.txt"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != 2 {
		t.Fatalf("loaded K = %d", back.K())
	}
}

func TestLoadModelErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad header":       "not a model\n",
		"bad version":      "kmeansll-model v99 k=1 dim=1\ncost=1 seedcost=1 iters=1 converged=true\n0\n",
		"bad shape":        "kmeansll-model v1 k=0 dim=1\ncost=1 seedcost=1 iters=1 converged=true\n",
		"missing stats":    "kmeansll-model v1 k=1 dim=1\n",
		"truncated center": "kmeansll-model v1 k=2 dim=1\ncost=1 seedcost=1 iters=1 converged=true\n0\n",
		"ragged center":    "kmeansll-model v1 k=1 dim=2\ncost=1 seedcost=1 iters=1 converged=true\n0\n",
		"nan center":       "kmeansll-model v1 k=1 dim=1\ncost=1 seedcost=1 iters=1 converged=true\nNaN\n",
		"garbage center":   "kmeansll-model v1 k=1 dim=1\ncost=1 seedcost=1 iters=1 converged=true\nzzz\n",
	}
	for name, input := range cases {
		if _, err := LoadModel(strings.NewReader(input)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestSaveEmptyModelFails(t *testing.T) {
	m := &Model{}
	if err := m.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("saving empty model should fail")
	}
}
